// Package core implements the TE-CCL formulations: the collective
// communication optimization problem modeled as a time-expanded
// multi-commodity flow problem.
//
// Three solvers are provided, mirroring §3-§4 of the paper:
//
//   - SolveMILP: the general mixed-integer form (§3.1). Supports
//     in-network copy, store-and-forward buffers, and α-aware pipelining.
//     Optimal, but the slowest to solve.
//   - SolveLP: the linear-program form (§4.1) for demands that do not
//     benefit from copy (ALLTOALL-like). Optimal and far more scalable.
//   - SolveAStar: the round-partitioned approximation (§4.2, Appendix D).
//     Supports copy, scales further than the MILP, trades optimality for
//     solver time via the round length.
//
// Time is discrete: epochs of duration τ. Chunks are the schedulable unit;
// a link of capacity T carries T·τ bytes per epoch, and a link latency α
// delays arrivals by ⌈α/τ⌉ epochs.
package core

import (
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// EpochMode selects how the epoch duration τ is derived (§5).
type EpochMode int8

const (
	// FastestLink sets τ from the fastest link (option (b) in §5 and
	// Appendix F): finer-grained schedules; slow links then need κ > 1
	// epochs per chunk, enforced with sliding-window capacity constraints.
	// This is the paper's default for most evaluations.
	FastestLink EpochMode = iota
	// SlowestLink sets τ so the slowest link transmits one chunk per epoch
	// (option (a) in §5). Simple, but coarse on heterogeneous networks.
	SlowestLink
)

// CrashMode selects the crash-basis policy: whether cold solves (no warm
// basis available from a session, batch chain, or re-solve) seed the
// simplex from the greedy schedule's flow support — a crash basis —
// instead of the all-slack identity.
type CrashMode int8

const (
	// CrashAuto (the default) crash-starts cold LP-form solves, where
	// the seed only shortens phase 1 (the LP optimum the decomposition
	// sees is tie-broken the same way; property-tested). MILP roots keep
	// the all-slack start: their greedy incumbent already encodes the
	// heuristic structure, and crash-seeding the relaxation as well
	// biases equal-objective tie-breaks toward the greedy shape
	// (measurably worse simulated makespans on ALLGATHER microbenches).
	CrashAuto CrashMode = iota
	// CrashAll additionally crash-starts cold MILP root relaxations
	// from the greedy incumbent's support. Cheaper roots, but among
	// equal-objective integer optima the returned schedule may lean
	// toward the greedy shape.
	CrashAll
	// CrashOff always cold-starts from the all-slack basis (the
	// historical behavior).
	CrashOff
)

// SwitchMode selects the switch model (§3.1 "Modeling switches").
type SwitchMode int8

const (
	// SwitchCopy models modern switches that can multicast (SHArP-style).
	SwitchCopy SwitchMode = iota
	// SwitchNoCopy models legacy switches: traffic in equals traffic out.
	SwitchNoCopy
)

// Options configures a solve. The zero value asks for the paper's default
// configuration: fastest-link epochs, copy-capable switches, buffers on.
type Options struct {
	// Epochs is the horizon K (number of sending epochs). 0 means
	// estimate it with EstimateEpochs.
	Epochs int
	// EpochMode picks the τ derivation; the default is FastestLink.
	EpochMode EpochMode
	// Tau overrides the epoch duration in seconds (0 = derive from mode).
	Tau float64
	// EpochMultiplier scales τ up to trade schedule quality for solver
	// speed/memory (the EM column of Table 4). 0 or 1 means no scaling.
	EpochMultiplier float64
	// SwitchMode picks the switch model.
	SwitchMode SwitchMode
	// NoBuffers disables store-and-forward at GPUs (§2.2, Figure 9): a
	// non-destination GPU must then forward an arrival in the next epoch,
	// like a switch.
	NoBuffers bool
	// BufferLimitChunks caps per-GPU buffered chunks (Appendix B);
	// 0 means unlimited.
	BufferLimitChunks int
	// GapLimit passes an early-stop optimality gap to the MILP solver
	// (the paper's Gurobi early-stop, e.g. 0.3). 0 solves to optimality.
	GapLimit float64
	// TimeLimit bounds MILP solve time (the paper uses 2 hours).
	TimeLimit time.Duration
	// NoIncumbentHeuristic disables the greedy warm-start incumbent.
	NoIncumbentHeuristic bool
	// Crash selects the crash-basis policy; the zero value (CrashAuto)
	// seeds cold LP-form solves from the greedy schedule's flow support
	// instead of the all-slack basis. See CrashMode.
	Crash CrashMode
	// MinimizeMakespan re-solves with shrinking horizons until the finish
	// epoch is provably minimal — the "binary search on the number of
	// epochs" the paper runs for its ALLTOALL results (§6). The base
	// objective already rewards early delivery, but it optimizes the
	// reward sum, which can trade the last chunk's arrival for earlier
	// intermediate ones; this switch pins the makespan.
	MinimizeMakespan bool

	// Workers is the number of branch-and-bound nodes the MILP and A*
	// solvers evaluate concurrently (and the default fan-out of
	// BatchSolveLP sweeps); 0 or 1 solves serially. The parallel search
	// is opportunistic: it proves the same optimum but may return a
	// different one of several equally optimal schedules run to run —
	// see milp.Options.Deterministic for the reproducible variant.
	Workers int

	// RoundEpochs is the number of epochs per A* round (§4.2); 0 derives
	// a round long enough that in-flight chunks land within one round.
	RoundEpochs int
	// MaxRounds caps A* rounds as a safety net; 0 means 64.
	MaxRounds int

	// Priority, when non-nil, scales the delivery reward of each demand
	// triple — the multi-tenant priority support of §5 ("prioritizing one
	// tenant's completion time over the others"). Values must be
	// positive; 1 is neutral.
	Priority func(src, chunk, dst int) float64
	// LinkCapacity, when non-nil, scales each link's capacity per epoch —
	// the variable-bandwidth support of §5 ("bandwidth only changes from
	// one epoch to the next"). The returned multiplier must be in [0, 1];
	// 0 disables the link for that epoch.
	LinkCapacity func(link topo.LinkID, epoch int) float64

	// Progress, when non-nil, receives observability samples while the
	// solve runs: model build, simplex completion, every branch-and-bound
	// node, each A* round, rolling-horizon windows, and makespan
	// re-solves. See ProgressFunc for the calling discipline.
	Progress ProgressFunc

	// HorizonWindow is the rolling-horizon window length in epochs
	// (SolverHorizon only); 0 derives one from the horizon and the
	// longest link span. See internal/horizon.
	HorizonWindow int
	// HorizonOverlap is the number of trailing window epochs re-solved by
	// the next window; the committed stride is HorizonWindow −
	// HorizonOverlap. 0 derives the minimum overlap that keeps every
	// committed send's landing (including switch forwards) inside one
	// window.
	HorizonOverlap int
	// HorizonCertify, when positive, budgets a monolithic re-solve after
	// the stitched schedule is assembled to measure the windowed-vs-
	// monolithic objective gap; the result's Gap is then that measured
	// gap instead of 0. Certification time is excluded from SolveTime.
	HorizonCertify time.Duration
	// AutoEpochMultiplier lets the horizon solver probe epoch-multiplier
	// grids (Table 4's EM column) before any model is built, picking the
	// smallest multiplier whose estimated cell count fits
	// HorizonCellBudget. Ignored when EpochMultiplier > 1 or Tau is set
	// explicitly.
	AutoEpochMultiplier bool
	// HorizonCellBudget is the demands×links×epochs budget the
	// auto-selected epoch multiplier must fit; 0 means the built-in
	// default, calibrated so the prober reproduces Table 4's EM column.
	HorizonCellBudget int

	// estimates, when non-nil, memoizes DeriveTau and EstimateEpochs
	// results across solves. Set by a Planner session; never by callers
	// directly (the field is unexported on purpose — per-topology caching
	// is only sound while the session pins one topology).
	estimates *estimateCache
}

// priorityOf returns the priority weight for a triple (1 when unset).
func (o *Options) priorityOf(src, chunk, dst int) float64 {
	if o.Priority == nil {
		return 1
	}
	return o.Priority(src, chunk, dst)
}

// capScale returns the capacity multiplier for a link at an epoch.
func (o *Options) capScale(l topo.LinkID, epoch int) float64 {
	if o.LinkCapacity == nil {
		return 1
	}
	return o.LinkCapacity(l, epoch)
}

// Result is the outcome of a solve.
type Result struct {
	Schedule  *schedule.Schedule
	Objective float64
	Gap       float64 // relative optimality gap (0 when proven optimal)
	Optimal   bool
	SolveTime time.Duration
	Epochs    int     // horizon used
	Tau       float64 // epoch duration used
	Rounds    int     // A* rounds used (0 for single-shot solvers)
	Windows   int     // rolling-horizon windows stitched (0 for monolithic solves)

	// Solver-effort counters. RootIterations is the simplex iteration
	// count of the main solve: the root relaxation on the MILP path, the
	// single LP solve on the LP path. Nodes and NodeIterations are filled
	// by the MILP path only (branch-and-bound nodes and their warm-started
	// iteration total); NodeIterations/Nodes far below RootIterations is
	// the signature of effective basis reuse.
	Nodes          int
	RootIterations int
	NodeIterations int
	// Refactorizations counts basis factorizations across the main
	// solve's LP work (the LP path's single solve, or the MILP root plus
	// all warm-started node re-solves). FTUpdates counts the
	// Forrest–Tomlin basis updates that carried pivots between those
	// refactorizations, and UpdateNnz the total update-file nonzeros they
	// accumulated — a high FTUpdates/Refactorizations ratio is the
	// signature of cheap incremental reoptimization.
	Refactorizations int
	FTUpdates        int
	UpdateNnz        int

	// Reused marks a BatchSolveLP sweep point whose schedule was replayed
	// from a structurally identical, already-solved point instead of
	// running the simplex again (its solver counters are therefore zero).
	Reused bool
	// WarmStarted marks a solve whose main simplex run (the LP solve, or
	// the MILP root relaxation) resumed from a basis of an earlier
	// related solve instead of starting cold — the signature of
	// cross-request state reuse through a Planner or BatchSolveLP chain.
	WarmStarted bool
	// CrashStarted marks a cold solve whose main simplex run was seeded
	// from the greedy schedule's flow support (a crash basis) instead of
	// the all-slack identity. Mutually exclusive with WarmStarted.
	CrashStarted bool
}

// instance is the preprocessed solve context shared by the formulations.
type instance struct {
	topo   *topo.Topology
	demand *collective.Demand
	opt    Options

	tau   float64
	K     int
	delta []int // per link: ceil(alpha/tau)
	kappa []int // per link: epochs to transmit one chunk
	// capChunks is the per-epoch link budget in chunks (may be < 1 in
	// fastest-link mode for slow links; the window constraint applies).
	capChunks []float64

	// commodities: the (src, chunk) pairs that exist.
	comms []comm
	// earliest[commIndex][node]: earliest epoch the chunk can be
	// forwardable at the node (reachability pruning).
	earliest [][]int
}

type comm struct {
	src, chunk int
	// dests are node IDs demanding this chunk.
	dests []int
}

// DeriveTau returns the epoch duration for a topology, chunk size, and
// mode, applying the paper's adjustments: the epoch multiplier (Table 4)
// and the α ≫ τ inflation rule (§6: when α > 200·τ, grow τ by 5×).
func DeriveTau(t *topo.Topology, chunkBytes float64, mode EpochMode, multiplier float64) float64 {
	var cap float64
	if mode == SlowestLink {
		cap = t.MinCapacity()
	} else {
		cap = t.MaxCapacity()
	}
	if cap <= 0 {
		return 0
	}
	tau := chunkBytes / cap
	if multiplier > 1 {
		tau *= multiplier
	}
	if a := t.MaxAlpha(); a > 200*tau {
		tau *= 5
	}
	return tau
}

// newInstance preprocesses a solve: derives τ, per-link δ and κ, the
// commodity list, and reachability windows.
func newInstance(t *topo.Topology, d *collective.Demand, opt Options) *instance {
	in := &instance{topo: t, demand: d, opt: opt}

	in.tau = opt.Tau
	if in.tau == 0 {
		if opt.estimates != nil {
			in.tau = opt.estimates.deriveTau(t, d.ChunkBytes, opt.EpochMode, opt.EpochMultiplier)
		} else {
			in.tau = DeriveTau(t, d.ChunkBytes, opt.EpochMode, opt.EpochMultiplier)
		}
	}

	nL := t.NumLinks()
	in.delta = make([]int, nL)
	in.kappa = make([]int, nL)
	in.capChunks = make([]float64, nL)
	for l := 0; l < nL; l++ {
		lk := t.Link(topo.LinkID(l))
		if lk.Alpha > 0 {
			in.delta[l] = int(math.Ceil(lk.Alpha/in.tau - 1e-9))
		}
		perEpoch := lk.Capacity * in.tau / d.ChunkBytes
		in.capChunks[l] = perEpoch
		if perEpoch >= 1-1e-9 {
			in.kappa[l] = 1
		} else {
			in.kappa[l] = int(math.Ceil(1/perEpoch - 1e-9))
		}
	}

	// Commodities.
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			if !d.SourceHasChunk(s, c) {
				continue
			}
			cm := comm{src: s, chunk: c}
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(s, c, dst) {
					cm.dests = append(cm.dests, dst)
				}
			}
			in.comms = append(in.comms, cm)
		}
	}

	in.K = opt.Epochs
	if in.K == 0 {
		if opt.estimates != nil {
			in.K = opt.estimates.estimateEpochs(t, d, in.tau)
		} else {
			in.K = EstimateEpochs(t, d, in.tau)
		}
	}

	// Reachability: hop cost in epochs for link l is delta+kappa (a chunk
	// sent at k is forwardable at k+delta+kappa).
	hop := in.hopDistances()
	in.earliest = make([][]int, len(in.comms))
	for ci, cm := range in.comms {
		e := make([]int, t.NumNodes())
		for n := range e {
			dd := hop[cm.src][n]
			if math.IsInf(dd, 1) {
				e[n] = in.K + 1 // unreachable within any horizon
			} else {
				e[n] = int(dd)
			}
		}
		in.earliest[ci] = e
	}
	return in
}

// hopDistances returns all-pairs distances in epoch units.
func (in *instance) hopDistances() [][]float64 {
	t := in.topo
	n := t.NumNodes()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for l := 0; l < t.NumLinks(); l++ {
		if t.LinkDown(topo.LinkID(l)) {
			continue
		}
		lk := t.Link(topo.LinkID(l))
		w := float64(in.delta[l] + in.kappa[l])
		if w < dist[lk.Src][lk.Dst] {
			dist[lk.Src][lk.Dst] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(dist[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}

// sendWindow reports whether commodity ci may be sent on link l at epoch
// k: the chunk must be able to reach the link source by k, and the
// arrival must land within the horizon.
func (in *instance) sendWindow(ci, l, k int) bool {
	if in.topo.LinkDown(topo.LinkID(l)) {
		return false
	}
	lk := in.topo.Link(topo.LinkID(l))
	if in.earliest[ci][lk.Src] > k {
		return false
	}
	if k+in.delta[l]+in.kappa[l]-1 > in.K-1 {
		return false
	}
	// Never route a commodity back into its own source: the source holds
	// the chunk permanently, so such flows are always wasteful.
	if int(lk.Dst) == in.comms[ci].src {
		return false
	}
	return true
}

// epochsPerChunk returns the κ slice for schedule validation, or nil when
// every link fits a chunk per epoch.
func (in *instance) epochsPerChunk() []int {
	any := false
	for _, k := range in.kappa {
		if k > 1 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	return append([]int(nil), in.kappa...)
}

// EstimateEpochs returns an upper bound on the number of epochs needed to
// satisfy the demand at epoch duration tau. It implements the spirit of
// Algorithm 1 (Appendix E) with an analytic feasibility sweep instead of
// coarse trial solves: the bound combines the epoch-distance between the
// farthest demand endpoints with per-node serialization load, then adds
// slack. The optimization discovers on its own when fewer epochs suffice
// (the objective rewards early delivery), so looseness costs only solver
// time, never schedule quality.
func EstimateEpochs(t *topo.Topology, d *collective.Demand, tau float64) int {
	if tau <= 0 {
		return 1
	}
	hop := t.FloydWarshall(func(lk topo.Link) float64 {
		del := 0
		if lk.Alpha > 0 {
			del = int(math.Ceil(lk.Alpha/tau - 1e-9))
		}
		per := lk.Capacity * tau / d.ChunkBytes
		kap := 1
		if per < 1-1e-9 {
			kap = int(math.Ceil(1/per - 1e-9))
		}
		return float64(del + kap)
	})
	maxDist := 0.0
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(s, c, dst) && hop[s][dst] > maxDist {
					maxDist = hop[s][dst]
				}
			}
		}
	}

	// Serialization: chunks each node must absorb against its aggregate
	// ingress per epoch, and distinct chunks each source must emit
	// against its egress.
	serial := 0.0
	for n := 0; n < d.NumNodes(); n++ {
		nodeID := topo.NodeID(n)
		var inChunks float64
		for s := 0; s < d.NumNodes(); s++ {
			for c := 0; c < d.NumChunks(); c++ {
				if d.Wants(s, c, n) {
					inChunks++
				}
			}
		}
		if inChunks > 0 {
			var ingress float64
			for _, l := range t.In(nodeID) {
				ingress += t.Link(l).Capacity * tau / d.ChunkBytes
			}
			if ingress > 0 {
				if v := inChunks / ingress; v > serial {
					serial = v
				}
			}
		}
		var distinct float64
		for c := 0; c < d.NumChunks(); c++ {
			if d.SourceHasChunk(n, c) {
				distinct++
			}
		}
		if distinct > 0 {
			var egress float64
			for _, l := range t.Out(nodeID) {
				egress += t.Link(l).Capacity * tau / d.ChunkBytes
			}
			if egress > 0 {
				if v := distinct / egress; v > serial {
					serial = v
				}
			}
		}
	}

	// Relay serialization: chunks that can only reach their destination
	// THROUGH a node (e.g. the shared IB switch between NDv2 chassis) are
	// serialized by that node's ingress/egress budget, which the per-node
	// terms above miss because the relay itself demands nothing. Without
	// this term the estimate undershoots on switch-centric topologies and
	// the solve grinds on an infeasible horizon.
	for relay := 0; relay < t.NumNodes(); relay++ {
		reach := t.ReachableWithout(topo.NodeID(relay))
		var mustCross float64
		for s := 0; s < d.NumNodes(); s++ {
			if s == relay {
				continue
			}
			for c := 0; c < d.NumChunks(); c++ {
				if !d.SourceHasChunk(s, c) {
					continue
				}
				for dst := 0; dst < d.NumNodes(); dst++ {
					if dst != relay && d.Wants(s, c, dst) && !reach[s][dst] {
						mustCross++
					}
				}
			}
		}
		if mustCross == 0 {
			continue
		}
		var ingress, egress float64
		for _, l := range t.In(topo.NodeID(relay)) {
			ingress += t.Link(l).Capacity * tau / d.ChunkBytes
		}
		for _, l := range t.Out(topo.NodeID(relay)) {
			egress += t.Link(l).Capacity * tau / d.ChunkBytes
		}
		budget := math.Min(ingress, egress)
		if budget > 0 {
			if v := mustCross / budget; v > serial {
				serial = v
			}
		}
	}

	est := int(math.Ceil(maxDist + serial + 1))
	// Slack: the bound is intentionally loose (Algorithm 1's output is an
	// upper bound too); 1.5x plus a constant covers scheduling conflicts.
	est = int(math.Ceil(float64(est)*1.5)) + 2
	if est < 2 {
		est = 2
	}
	return est
}
