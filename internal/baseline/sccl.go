package baseline

import (
	"fmt"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/milp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// SCCLOptions tunes the SCCL-like synthesizer.
type SCCLOptions struct {
	// MaxSteps bounds the least-steps search. Default 8.
	MaxSteps int
	// MaxRounds bounds per-step link multiplicity (SCCL's rounds-per-step).
	// Default 3.
	MaxRounds int
	// Steps/Rounds pin an exact instance (SCCL's `instance` mode) instead
	// of searching; both must be > 0 to take effect.
	Steps, Rounds int
	// TimeLimit bounds the whole synthesis (shared across the least-steps
	// search); individual feasibility solves get the remaining budget.
	TimeLimit time.Duration
}

// SCCLResult is the outcome of the SCCL-like synthesizer.
type SCCLResult struct {
	Schedule  *schedule.Schedule
	Steps     int
	Rounds    int // chunks per link per step in the winning synthesis
	SolveTime time.Duration
	Feasible  bool
	// TransferTime is the synchronous-step execution estimate: each step
	// costs the worst per-link serialization plus one α barrier.
	TransferTime float64
}

// SolveSCCL synthesizes a collective schedule under SCCL's synchronous-
// step model: all sends of step t complete (including their α) before any
// send of step t+1 starts. This is the barrier the paper contrasts with
// TE-CCL's pipelining (§6.1, Table 3): with one chunk the barrier costs
// nothing, with more chunks it pays α once per step per chunk wave.
// Least-steps search: smallest step count, then smallest rounds-per-step,
// that satisfies the demand.
func SolveSCCL(t *topo.Topology, d *collective.Demand, opt SCCLOptions) *SCCLResult {
	start := time.Now()
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 8
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 3
	}
	res := &SCCLResult{}

	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	try := func(steps, rounds int) *schedule.Schedule {
		budget := time.Duration(0)
		if !deadline.IsZero() {
			budget = time.Until(deadline)
			if budget <= 0 {
				return nil
			}
		}
		s, err := synthesizeSteps(t, d, steps, rounds, budget)
		if err != nil {
			return nil
		}
		return s
	}

	if opt.Steps > 0 && opt.Rounds > 0 {
		if s := try(opt.Steps, opt.Rounds); s != nil {
			res.Schedule, res.Steps, res.Rounds, res.Feasible = s, opt.Steps, opt.Rounds, true
		}
	} else {
	search:
		for steps := 1; steps <= maxSteps; steps++ {
			for rounds := 1; rounds <= maxRounds; rounds++ {
				if !deadline.IsZero() && time.Now().After(deadline) {
					break search
				}
				if s := try(steps, rounds); s != nil {
					res.Schedule, res.Steps, res.Rounds, res.Feasible = s, steps, rounds, true
					break search
				}
			}
		}
	}
	res.SolveTime = time.Since(start)
	if res.Feasible {
		res.TransferTime = scclTransferTime(res.Schedule, res.Steps, t)
	}
	return res
}

// alphaZeroClone returns a copy of t with every α set to zero. Under the
// barrier model α is paid per step, outside the epoch timeline, so the
// step-indexed schedule validates against an α-free topology.
func alphaZeroClone(t *topo.Topology) *topo.Topology {
	out := topo.New(t.Name + "-steps")
	for n := 0; n < t.NumNodes(); n++ {
		nd := t.Node(topo.NodeID(n))
		out.AddNode(nd.Name, nd.Switch)
	}
	for l := 0; l < t.NumLinks(); l++ {
		lk := t.Link(topo.LinkID(l))
		out.AddLink(lk.Src, lk.Dst, lk.Capacity, 0)
	}
	return out
}

// synthesizeSteps solves the barrier-model feasibility MILP: within
// `steps` synchronous steps, each link carrying at most `rounds` chunks
// per step, deliver every demand. Copy at GPUs is allowed (SCCL's model
// permits multicasting from a buffer); switches are treated like GPUs
// here because SCCL targets switchless single-chassis boxes — on switched
// topologies this is generous to SCCL.
func synthesizeSteps(t *topo.Topology, d *collective.Demand, steps, rounds int, tl time.Duration) (*schedule.Schedule, error) {
	type comm struct {
		src, chunk int
		dests      []int
	}
	var comms []comm
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			if !d.SourceHasChunk(s, c) {
				continue
			}
			cm := comm{src: s, chunk: c}
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(s, c, dst) {
					cm.dests = append(cm.dests, dst)
				}
			}
			comms = append(comms, cm)
		}
	}
	if len(comms) == 0 {
		return &schedule.Schedule{Topo: t, Demand: d, Tau: 1, NumEpochs: 0, AllowCopy: true}, nil
	}

	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID
	nL := t.NumLinks()
	nN := t.NumNodes()
	// F[ci][l][s], B[ci][n][s] with barrier semantics: everything sent in
	// step s has arrived by the start of step s+1.
	fvar := make([][][]int32, len(comms))
	bvar := make([][][]int32, len(comms))
	const no = int32(-1)
	for ci := range comms {
		fvar[ci] = make([][]int32, nL)
		for l := 0; l < nL; l++ {
			col := make([]int32, steps)
			for k := range col {
				col[k] = no
			}
			for k := 0; k < steps; k++ {
				v := p.AddVar("", 0, 1, 0)
				col[k] = int32(v)
				ints = append(ints, v)
			}
			fvar[ci][l] = col
		}
		bvar[ci] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, steps+1)
			for k := range col {
				col[k] = no
			}
			if n != comms[ci].src {
				for k := 1; k <= steps; k++ {
					v := p.AddVar("", 0, 1, 0)
					col[k] = int32(v)
					// Earlier delivery earns more, like SCCL's preference
					// for fewer steps once feasible.
					p.SetObj(v, 1/float64(k))
				}
			}
			bvar[ci][n] = col
		}
	}

	for ci, cm := range comms {
		// Buffer recurrence: B_{s+1} = B_s + arrivals(s), B_0 = 0 for
		// non-sources; source is the constant 1.
		for n := 0; n < nN; n++ {
			if n == cm.src {
				continue
			}
			for k := 1; k <= steps; k++ {
				terms := []lp.Term{{Var: lp.VarID(bvar[ci][n][k]), Coeff: 1}}
				if k > 1 {
					terms = append(terms, lp.Term{Var: lp.VarID(bvar[ci][n][k-1]), Coeff: -1})
				}
				for _, lid := range t.In(topo.NodeID(n)) {
					terms = append(terms, lp.Term{Var: lp.VarID(fvar[ci][int(lid)][k-1]), Coeff: -1})
				}
				p.AddRow(terms, lp.EQ, 0)
			}
			// Destination completion.
			for _, dd := range cm.dests {
				if dd == n {
					p.SetBounds(lp.VarID(bvar[ci][n][steps]), 1, 1)
				}
			}
		}
		// Sending requires holding: F at step k <= B_k (source: always 1).
		for l := 0; l < nL; l++ {
			srcNode := int(t.Link(topo.LinkID(l)).Src)
			if srcNode == cm.src {
				continue
			}
			for k := 0; k < steps; k++ {
				if k == 0 {
					p.SetBounds(lp.VarID(fvar[ci][l][0]), 0, 0)
					continue
				}
				p.AddRow([]lp.Term{
					{Var: lp.VarID(fvar[ci][l][k]), Coeff: 1},
					{Var: lp.VarID(bvar[ci][srcNode][k]), Coeff: -1},
				}, lp.LE, 0)
			}
		}
	}

	// Per-step link multiplicity (SCCL's rounds).
	for l := 0; l < nL; l++ {
		for k := 0; k < steps; k++ {
			var row []lp.Term
			for ci := range comms {
				row = append(row, lp.Term{Var: lp.VarID(fvar[ci][l][k]), Coeff: 1})
			}
			p.AddRow(row, lp.LE, float64(rounds))
		}
	}

	msol := milp.Solve(&milp.Problem{LP: p, Integer: ints}, milp.Options{TimeLimit: tl})
	if msol.Status != milp.StatusOptimal && msol.Status != milp.StatusFeasible {
		return nil, fmt.Errorf("baseline: SCCL %d-step synthesis: %v", steps, msol.Status)
	}

	// Extract with steps mapped onto epochs 1:1. The τ here is only a
	// label; scclTransferTime computes the true barrier cost.
	var sends []schedule.Send
	for ci, cm := range comms {
		for l := 0; l < nL; l++ {
			for k := 0; k < steps; k++ {
				if msol.X[fvar[ci][l][k]] > 0.5 {
					sends = append(sends, schedule.Send{
						Src: cm.src, Chunk: cm.chunk,
						Link: topo.LinkID(l), Epoch: k, Fraction: 1,
					})
				}
			}
		}
	}
	// SCCL schedules are step-indexed: one epoch = one synchronous step,
	// with α paid per step outside the timeline. Validating and pruning
	// against an α-zero topology makes the step semantics line up with
	// the epoch machinery; scclTransferTime is the real execution model.
	s := &schedule.Schedule{
		Topo: alphaZeroClone(t), Demand: d,
		Tau:       barrierTau(t, d) * float64(rounds),
		NumEpochs: steps, Sends: sends, AllowCopy: true,
	}
	s = s.Prune()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: SCCL synthesis invalid: %w", err)
	}
	return s, nil
}

// barrierTau is the duration of one synchronous step's transmission wave:
// one chunk on the slowest link plus the worst α.
func barrierTau(t *topo.Topology, d *collective.Demand) float64 {
	return d.ChunkBytes/t.MinCapacity() + t.MaxAlpha()
}

// scclTransferTime estimates the synchronous execution: per step, every
// link finishes its chunks and the α barrier passes before the next step.
// The real topology supplies the α values (the schedule's own topology is
// the α-zero step clone).
func scclTransferTime(s *schedule.Schedule, steps int, t *topo.Topology) float64 {
	total := 0.0
	for k := 0; k < steps; k++ {
		perLink := map[topo.LinkID]float64{}
		stepMax := 0.0
		used := false
		for _, snd := range s.Sends {
			if snd.Epoch != k {
				continue
			}
			used = true
			perLink[snd.Link] += snd.Fraction * s.Demand.ChunkBytes / t.Link(snd.Link).Capacity
			cost := perLink[snd.Link] + t.Link(snd.Link).Alpha
			if cost > stepMax {
				stepMax = cost
			}
		}
		if used {
			total += stepMax
		}
	}
	return total
}
