package baseline

import (
	"math"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

const chunk1ms = 1e6 // one epoch on a 1 GB/s link

func gpuIDs(t *topo.Topology) []int {
	var out []int
	for _, g := range t.GPUs() {
		out = append(out, int(g))
	}
	return out
}

func TestTACCLRingAllGather(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, gpuIDs(tp), 1, chunk1ms)
	r := SolveTACCL(tp, d, TACCLOptions{Seed: 1, Restarts: 30})
	if !r.Feasible {
		t.Fatal("TACCL infeasible on an easy ring")
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if _, err := sim.Run(r.Schedule); err != nil {
		t.Fatalf("sim: %v", err)
	}
	// TACCL cannot beat the optimum of 2 epochs.
	if fe := r.Schedule.FinishEpoch(); fe < 1 {
		t.Fatalf("finish epoch %d below optimum", fe)
	}
}

func TestTACCLDeterministicPerSeed(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, gpuIDs(tp), 1, chunk1ms)
	a := SolveTACCL(tp, d, TACCLOptions{Seed: 7, Restarts: 10})
	b := SolveTACCL(tp, d, TACCLOptions{Seed: 7, Restarts: 10})
	if a.Feasible != b.Feasible {
		t.Fatal("same seed, different feasibility")
	}
	if a.Schedule.FinishEpoch() != b.Schedule.FinishEpoch() {
		t.Fatal("same seed, different schedule quality")
	}
}

func TestTACCLVariesAcrossSeeds(t *testing.T) {
	// The paper: "TACCL's heuristic is unreliable (produces different
	// solutions in each run)". With one attempt per seed, quality varies
	// on a contended instance.
	tp := topo.Internal2(2)
	d := collective.AllGather(tp.NumNodes(), gpuIDs(tp), 2, 1e6)
	seen := map[int]bool{}
	for seed := int64(0); seed < 12; seed++ {
		r := SolveTACCL(tp, d, TACCLOptions{Seed: seed, Restarts: 1})
		if r.Feasible {
			seen[r.Schedule.FinishEpoch()] = true
		} else {
			seen[-1] = true
		}
	}
	if len(seen) < 2 {
		t.Skip("instance not contended enough to show variance (acceptable)")
	}
}

func TestTACCLThroughSwitch(t *testing.T) {
	tp := topo.Star(4, 1e9, 1e-6)
	d := collective.AllGather(tp.NumNodes(), gpuIDs(tp), 1, chunk1ms)
	r := SolveTACCL(tp, d, TACCLOptions{Seed: 3, Restarts: 50})
	if !r.Feasible {
		t.Fatal("infeasible through switch")
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestTACCLInfeasibleOnTinyBudget(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.AllToAll(3, gpuIDs(tp), 3, chunk1ms)
	r := SolveTACCL(tp, d, TACCLOptions{Seed: 1, Restarts: 5, MaxEpochs: 1})
	if r.Feasible {
		t.Fatal("expected infeasibility with a 1-epoch budget")
	}
}

func TestSCCLLeastStepsRing(t *testing.T) {
	tp := topo.Ring(4, 1e9, 1e-6)
	d := collective.AllGather(4, gpuIDs(tp), 1, chunk1ms)
	r := SolveSCCL(tp, d, SCCLOptions{MaxSteps: 5})
	if !r.Feasible {
		t.Fatal("SCCL infeasible on ring")
	}
	// Ring of 4 needs 2 steps (both directions used).
	if r.Steps != 2 {
		t.Fatalf("steps = %d, want 2", r.Steps)
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Barrier execution: 2 steps x (chunk/cap + alpha).
	want := 2 * (chunk1ms/1e9 + 1e-6)
	if math.Abs(r.TransferTime-want) > 1e-9 {
		t.Fatalf("transfer = %g, want %g", r.TransferTime, want)
	}
}

func TestSCCLBarrierPaysAlphaPerStep(t *testing.T) {
	// Line of 3: broadcast 0->2 takes 2 steps; each pays alpha.
	alpha := 5e-4
	tp := topo.Line(3, 1e9, alpha)
	d := collective.New(3, 1, chunk1ms)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	r := SolveSCCL(tp, d, SCCLOptions{MaxSteps: 4})
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	if r.Steps != 2 {
		t.Fatalf("steps = %d, want 2", r.Steps)
	}
	want := 2 * (chunk1ms/1e9 + alpha)
	if math.Abs(r.TransferTime-want) > 1e-9 {
		t.Fatalf("transfer = %g, want %g", r.TransferTime, want)
	}
}

func TestSCCLInstanceMode(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, gpuIDs(tp), 1, chunk1ms)
	r := SolveSCCL(tp, d, SCCLOptions{Steps: 3, Rounds: 1})
	if !r.Feasible || r.Steps != 3 {
		t.Fatalf("instance mode failed: feasible=%v steps=%d", r.Feasible, r.Steps)
	}
	// Too few steps is infeasible.
	r1 := SolveSCCL(tp, d, SCCLOptions{Steps: 1, Rounds: 1})
	if r1.Feasible {
		t.Fatal("1 step cannot finish a 4-ring allgather")
	}
}

func TestSPFNoCopyCost(t *testing.T) {
	// Figure 1c shape: SPF sends one copy per destination; with copy the
	// optimum halves the source-link transmissions.
	tp := topo.New("fig1c")
	s := tp.AddNode("s", false)
	h := tp.AddNode("h", false)
	d1 := tp.AddNode("d1", false)
	d2 := tp.AddNode("d2", false)
	tp.AddLink(s, h, 1e9, 0)
	tp.AddLink(h, d1, 1e9, 0)
	tp.AddLink(h, d2, 1e9, 0)
	d := collective.New(4, 1, chunk1ms)
	d.Set(int(s), 0, int(d1))
	d.Set(int(s), 0, int(d2))
	r := SolveSPF(tp, d, 0)
	if !r.Feasible {
		t.Fatal("SPF infeasible")
	}
	// SPF pushes the chunk over s->h twice: finish epoch 2; copy-aware
	// optimum would finish at epoch 1.
	if fe := r.Schedule.FinishEpoch(); fe != 2 {
		t.Fatalf("finish epoch = %d, want 2 (no copy)", fe)
	}
	if r.Schedule.TotalBytesSent() != 4*chunk1ms {
		t.Fatalf("bytes = %g", r.Schedule.TotalBytesSent())
	}
}

func TestSPFValidOnMeshAllToAll(t *testing.T) {
	tp := topo.FullMesh(4, 1e9, 1e-6)
	d := collective.AllToAll(4, gpuIDs(tp), 1, chunk1ms)
	r := SolveSPF(tp, d, 0)
	if !r.Feasible {
		t.Fatal("SPF infeasible")
	}
	if _, err := sim.Run(r.Schedule); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRingAllGather(t *testing.T) {
	tp := topo.Ring(5, 1e9, 0)
	s, err := RingAllGather(tp, gpuIDs(tp), chunk1ms)
	if err != nil {
		t.Fatalf("RingAllGather: %v", err)
	}
	// n-1 = 4 steps, one epoch each.
	if fe := s.FinishEpoch(); fe != 3 {
		t.Fatalf("finish epoch = %d, want 3", fe)
	}
	res, err := sim.Run(s)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if math.Abs(res.FinishTime-4e-3) > 1e-9 {
		t.Fatalf("finish = %g, want 4e-3", res.FinishTime)
	}
}

func TestRingAllGatherWithAlpha(t *testing.T) {
	tp := topo.Ring(4, 1e9, 1.5e-3)
	s, err := RingAllGather(tp, gpuIDs(tp), chunk1ms)
	if err != nil {
		t.Fatalf("RingAllGather: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestRingAllGatherErrors(t *testing.T) {
	tp := topo.Line(3, 1e9, 0) // no wrap-around link
	if _, err := RingAllGather(tp, gpuIDs(tp), chunk1ms); err == nil {
		t.Fatal("expected missing-link error")
	}
	if _, err := RingAllGather(tp, []int{0}, chunk1ms); err == nil {
		t.Fatal("expected size error")
	}
}

func TestRingReduceScatter(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	s, err := RingReduceScatter(tp, gpuIDs(tp), chunk1ms)
	if err != nil {
		t.Fatalf("RingReduceScatter: %v", err)
	}
	if _, err := sim.Run(s); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDijkstraPath(t *testing.T) {
	tp := topo.Line(4, 1e9, 0)
	path := dijkstraPath(tp, 0, 3, func(l int) float64 { return 1 })
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	// Path must be connected 0 -> 3.
	at := 0
	for _, l := range path {
		lk := tp.Link(topo.LinkID(l))
		if int(lk.Src) != at {
			t.Fatalf("disconnected path at %d", at)
		}
		at = int(lk.Dst)
	}
	if at != 3 {
		t.Fatalf("path ends at %d", at)
	}
	// Unreachable.
	tp2 := topo.New("t")
	a := tp2.AddNode("a", false)
	b := tp2.AddNode("b", false)
	tp2.AddLink(b, a, 1, 0)
	if p := dijkstraPath(tp2, int(a), int(b), func(int) float64 { return 1 }); p != nil {
		t.Fatal("expected nil path")
	}
}
