package baseline

import (
	"fmt"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// RingAllGather generates the classic ring ALLGATHER: in step k, every
// GPU forwards the chunk it received in step k-1 to its ring successor;
// after n-1 steps everyone holds everything. The GPU order must form a
// directed cycle in the topology (gpus[i] -> gpus[i+1 mod n]). This is
// the textbook bandwidth-optimal algorithm NCCL uses on rings, included
// as a sanity baseline and for the example programs.
func RingAllGather(t *topo.Topology, gpus []int, chunkBytes float64) (*schedule.Schedule, error) {
	n := len(gpus)
	if n < 2 {
		return nil, fmt.Errorf("baseline: ring needs >= 2 GPUs")
	}
	links := make([]topo.LinkID, n)
	for i := 0; i < n; i++ {
		l := t.FindLink(topo.NodeID(gpus[i]), topo.NodeID(gpus[(i+1)%n]))
		if l < 0 {
			return nil, fmt.Errorf("baseline: no link %d->%d for ring", gpus[i], gpus[(i+1)%n])
		}
		links[i] = l
	}
	d := collective.AllGather(t.NumNodes(), gpus, 1, chunkBytes)

	tau := chunkBytes / t.MinCapacity()
	// Epoch must also cover the α of the slowest ring link so one step
	// fits one epoch.
	delta := 0
	for _, l := range links {
		a := t.Link(l).Alpha
		if a > 0 {
			if dl := int(a/tau) + 1; dl > delta {
				delta = dl
			}
		}
	}
	step := 1 + delta // epochs per ring step

	var sends []schedule.Send
	for k := 0; k < n-1; k++ {
		for i := 0; i < n; i++ {
			// In step k, gpus[i] forwards the chunk of gpus[(i-k+n)%n].
			src := gpus[(i-k+n*n)%n]
			sends = append(sends, schedule.Send{
				Src: src, Chunk: 0, Link: links[i], Epoch: k * step, Fraction: 1,
			})
		}
	}
	s := &schedule.Schedule{
		Topo: t, Demand: d, Tau: tau, NumEpochs: (n-1)*step + 1,
		Sends: sends, AllowCopy: true,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: ring allgather schedule invalid: %w", err)
	}
	return s, nil
}

// RingReduceScatter generates the communication schedule of a ring
// REDUCESCATTER without in-network reduction: shard j of every origin
// travels the ring individually until it reaches gpus[j]. (The schedule
// model carries data, not partial sums — the same modeling choice TE-CCL
// makes; with reduction the wire traffic would be lower by the ring
// pipelining factor.) Hops are greedily list-scheduled on the ring links.
func RingReduceScatter(t *topo.Topology, gpus []int, chunkBytes float64) (*schedule.Schedule, error) {
	n := len(gpus)
	if n < 2 {
		return nil, fmt.Errorf("baseline: ring needs >= 2 GPUs")
	}
	links := make([]topo.LinkID, n)
	for i := 0; i < n; i++ {
		l := t.FindLink(topo.NodeID(gpus[i]), topo.NodeID(gpus[(i+1)%n]))
		if l < 0 {
			return nil, fmt.Errorf("baseline: no link %d->%d for ring", gpus[i], gpus[(i+1)%n])
		}
		links[i] = l
	}
	d := collective.ReduceScatter(t.NumNodes(), gpus, chunkBytes)
	tau := chunkBytes / t.MinCapacity()
	delta := 0
	for _, l := range links {
		a := t.Link(l).Alpha
		if a > 0 {
			if dl := int(a/tau) + 1; dl > delta {
				delta = dl
			}
		}
	}
	step := 1 + delta

	// Greedy list scheduling of each shard along its ring arc.
	linkUsed := map[[2]int]bool{} // (ring position, epoch)
	var sends []schedule.Send
	for i := 0; i < n; i++ { // origin index
		for j := 0; j < n; j++ { // destination shard index
			if i == j {
				continue
			}
			at := 0 // forwardable epoch at the current position
			for pos := i; pos != j; pos = (pos + 1) % n {
				k := at
				for linkUsed[[2]int{pos, k}] {
					k += step
				}
				linkUsed[[2]int{pos, k}] = true
				sends = append(sends, schedule.Send{
					Src: gpus[i], Chunk: j, Link: links[pos], Epoch: k, Fraction: 1,
				})
				at = k + step
			}
		}
	}
	numEpochs := 0
	for _, snd := range sends {
		if snd.Epoch+1 > numEpochs {
			numEpochs = snd.Epoch + 1
		}
	}
	s := &schedule.Schedule{
		Topo: t, Demand: d, Tau: tau, NumEpochs: numEpochs,
		Sends: sends, AllowCopy: true,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: ring reducescatter schedule invalid: %w", err)
	}
	return s, nil
}
