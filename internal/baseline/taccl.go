// Package baseline implements the systems TE-CCL is evaluated against:
// a TACCL-like two-phase routing/scheduling heuristic, an SCCL-like
// synchronous-step synthesizer, a shortest-path-first scheduler, and
// classic ring collectives. None of them co-optimize routing, scheduling,
// copy, and α-pipelining the way TE-CCL's joint formulation does — that
// gap is precisely what the paper's evaluation measures.
package baseline

import (
	"math"
	"math/rand"
	"time"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// TACCLOptions tunes the TACCL-like heuristic.
type TACCLOptions struct {
	// Seed drives the randomized routing order and tie-breaks. The paper
	// observes TACCL "produces different solutions in each run"; vary the
	// seed to reproduce that.
	Seed int64
	// Restarts is the number of randomized routing/scheduling attempts;
	// the best schedule wins. Default 100.
	Restarts int
	// MaxEpochs bounds the schedule length; beyond it the attempt is
	// declared infeasible (reproducing the paper's X cases). 0 derives a
	// generous bound.
	MaxEpochs int
	// Tau overrides the epoch duration (0 = fastest-link derivation).
	Tau float64
}

// TACCLResult is the outcome of the TACCL-like heuristic.
type TACCLResult struct {
	Schedule  *schedule.Schedule
	SolveTime time.Duration
	Feasible  bool
	Attempts  int
}

// SolveTACCL runs the TACCL-like two-phase heuristic: phase one routes
// every (source, chunk, destination) triple over a congestion-aware
// shortest path in randomized order; phase two list-schedules the hops
// into epochs. Routing never sees scheduling conflicts — the decoupling
// TACCL's design accepts and §2.1 criticizes — so quality trails the
// joint optimization, and tight instances can fail outright.
func SolveTACCL(t *topo.Topology, d *collective.Demand, opt TACCLOptions) *TACCLResult {
	start := time.Now()
	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = 100
	}
	res := &TACCLResult{}
	rng := rand.New(rand.NewSource(opt.Seed))
	bestFinish := math.Inf(1)
	for a := 0; a < restarts; a++ {
		s := tacclAttempt(t, d, rng, opt)
		res.Attempts++
		if s == nil {
			continue
		}
		if ft := s.FinishTime(); ft < bestFinish {
			bestFinish = ft
			res.Schedule = s
			res.Feasible = true
		}
	}
	res.SolveTime = time.Since(start)
	return res
}

// triple is one (source, chunk, destination) demand unit.
type triple struct {
	src, chunk, dst int
}

func tacclAttempt(t *topo.Topology, d *collective.Demand, rng *rand.Rand, opt TACCLOptions) *schedule.Schedule {
	tau := opt.Tau
	if tau == 0 {
		tau = d.ChunkBytes / t.MaxCapacity()
	}
	nL := t.NumLinks()
	delta := make([]int, nL)
	kappa := make([]int, nL)
	capChunks := make([]float64, nL)
	for l := 0; l < nL; l++ {
		lk := t.Link(topo.LinkID(l))
		if lk.Alpha > 0 {
			delta[l] = int(math.Ceil(lk.Alpha/tau - 1e-9))
		}
		capChunks[l] = lk.Capacity * tau / d.ChunkBytes
		if capChunks[l] >= 1-1e-9 {
			kappa[l] = 1
		} else {
			kappa[l] = int(math.Ceil(1/capChunks[l] - 1e-9))
		}
	}
	maxEpochs := opt.MaxEpochs
	if maxEpochs == 0 {
		maxHop := 1
		for l := 0; l < nL; l++ {
			if h := delta[l] + kappa[l]; h > maxHop {
				maxHop = h
			}
		}
		maxEpochs = 4*maxHop + 4*d.NumChunks()*d.NumNodes()
	}

	// Demand triples in randomized order (TACCL's run-to-run variance).
	var triples []triple
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(s, c, dst) {
					triples = append(triples, triple{s, c, dst})
				}
			}
		}
	}
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

	// Phase 1: congestion-aware shortest paths (load feedback, but no
	// view of timing).
	load := make([]float64, nL)
	paths := make([][]int, len(triples)) // link IDs per triple
	for i, tr := range triples {
		path := dijkstraPath(t, tr.src, tr.dst, func(l int) float64 {
			lk := t.Link(topo.LinkID(l))
			base := lk.Alpha + d.ChunkBytes/lk.Capacity
			// Congestion penalty plus a small random jitter for
			// tie-breaking diversity.
			return base * (1 + load[l]) * (1 + 0.05*rng.Float64())
		})
		if path == nil {
			return nil
		}
		for _, l := range path {
			load[l]++
		}
		paths[i] = path
	}

	// Phase 2: list scheduling. Chunks become available at nodes as hops
	// complete; shared (chunk, link, epoch) hops are deduplicated, which
	// gives the heuristic prefix-sharing multicast.
	type hopKey struct {
		src, chunk, link int
	}
	scheduledHop := map[hopKey]int{} // -> epoch of the existing send
	linkUsed := map[[2]int]float64{} // (link, epoch) -> chunks
	var sends []schedule.Send

	windowFree := func(l, k int) bool {
		used := 0.0
		for kk := k - kappa[l] + 1; kk <= k; kk++ {
			if kk >= 0 {
				used += linkUsed[[2]int{l, kk}]
			}
		}
		return used+1 <= capChunks[l]*float64(kappa[l])+1e-9
	}

	emit := func(tr triple, l, k int) {
		linkUsed[[2]int{l, k}]++
		scheduledHop[hopKey{tr.src, tr.chunk, l}] = k
		sends = append(sends, schedule.Send{
			Src: tr.src, Chunk: tr.chunk,
			Link: topo.LinkID(l), Epoch: k, Fraction: 1,
		})
	}

	for i, tr := range triples {
		at := 0 // chunk forwardable at the path head from epoch 0
		path := paths[i]
		for h := 0; h < len(path); {
			l := path[h]
			lk := t.Link(topo.LinkID(l))
			hk := hopKey{tr.src, tr.chunk, l}

			if t.IsSwitch(lk.Dst) {
				// Switch traversal is scheduled atomically, like TACCL's
				// hyper-edges: the switch cannot buffer, so the out-hop
				// must fire the exact epoch the chunk arrives.
				if h+1 >= len(path) {
					return nil // path cannot end at a switch
				}
				l2 := path[h+1]
				if t.IsSwitch(t.Link(topo.LinkID(l2)).Dst) {
					return nil // switch-switch chains unsupported
				}
				hk2 := hopKey{tr.src, tr.chunk, l2}
				advance := func(outEpoch int) {
					at = outEpoch + delta[l2] + kappa[l2]
					h += 2
				}
				if e2, ok := scheduledHop[hk2]; ok {
					// This chunk already crosses the switch on this
					// out-link, with its own valid feed: free ride.
					advance(e2)
					continue
				}
				if e, ok := scheduledHop[hk]; ok {
					// The in-hop exists: forward exactly when it lands,
					// if the out window allows.
					k2 := e + delta[l] + kappa[l]
					if windowFree(l2, k2) {
						emit(tr, l2, k2)
						advance(k2)
						continue
					}
					// Otherwise fall through and push a second copy in.
				}
				k := at
				for !(windowFree(l, k) && windowFree(l2, k+delta[l]+kappa[l])) {
					k++
					if k > maxEpochs {
						return nil
					}
				}
				emit(tr, l, k)
				k2 := k + delta[l] + kappa[l]
				emit(tr, l2, k2)
				advance(k2)
				continue
			}

			// GPU-to-GPU hop.
			if e, ok := scheduledHop[hk]; ok {
				// Reuse the existing transmission (shared path prefix).
				at = e + delta[l] + kappa[l]
				h++
				continue
			}
			k := at
			for !windowFree(l, k) {
				k++
				if k > maxEpochs {
					return nil
				}
			}
			emit(tr, l, k)
			at = k + delta[l] + kappa[l]
			h++
		}
		if at-1 >= maxEpochs {
			return nil
		}
	}

	numEpochs := 0
	for _, snd := range sends {
		if snd.Epoch+1 > numEpochs {
			numEpochs = snd.Epoch + 1
		}
	}
	epc := make([]int, nL)
	copy(epc, kappa)
	anyKappa := false
	for _, k := range kappa {
		if k > 1 {
			anyKappa = true
		}
	}
	if !anyKappa {
		epc = nil
	}
	s := &schedule.Schedule{
		Topo: t, Demand: d, Tau: tau, NumEpochs: numEpochs,
		Sends: sends, AllowCopy: true, EpochsPerChunk: epc,
	}
	if err := s.Validate(); err != nil {
		return nil
	}
	return s
}

// dijkstraPath returns the link IDs of the cheapest src->dst path under
// the given per-link weight, or nil if unreachable.
func dijkstraPath(t *topo.Topology, src, dst int, weight func(l int) float64) []int {
	n := t.NumNodes()
	dist := make([]float64, n)
	from := make([]int, n) // incoming link on the best path
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		from[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 || u == dst {
			break
		}
		done[u] = true
		for _, lid := range t.Out(topo.NodeID(u)) {
			l := int(lid)
			v := int(t.Link(lid).Dst)
			if w := dist[u] + weight(l); w < dist[v] {
				dist[v] = w
				from[v] = l
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		l := from[v]
		if l < 0 {
			return nil
		}
		rev = append(rev, l)
		v = int(t.Link(topo.LinkID(l)).Src)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
