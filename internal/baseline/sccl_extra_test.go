package baseline

import (
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

func TestSCCLGlobalBudget(t *testing.T) {
	// A contended instance with a microscopic budget must return fast,
	// feasible or not.
	tp := topo.DGX1()
	d := collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
	start := time.Now()
	r := SolveSCCL(tp, d, SCCLOptions{MaxSteps: 6, TimeLimit: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budget ignored: %v", elapsed)
	}
	_ = r // feasibility depends on how far the search got; both outcomes fine
}

func TestSCCLAlphaZeroCloneShape(t *testing.T) {
	tp := topo.NDv2(2)
	c := alphaZeroClone(tp)
	if c.NumNodes() != tp.NumNodes() || c.NumLinks() != tp.NumLinks() {
		t.Fatal("clone changed shape")
	}
	if c.MaxAlpha() != 0 {
		t.Fatal("clone kept alpha")
	}
	if len(c.Switches()) != len(tp.Switches()) {
		t.Fatal("clone lost switch flags")
	}
}

func TestSCCLSingleChunkBeatsPipelinesNothing(t *testing.T) {
	// Table 3's 1-chunk case: SCCL's barrier time for a diameter-1 hop is
	// exactly alpha + chunk/cap — there is nothing to pipeline.
	tp := topo.Line(2, 1e9, 1e-6)
	d := collective.New(2, 1, 1e6)
	d.Set(0, 0, 1)
	r := SolveSCCL(tp, d, SCCLOptions{MaxSteps: 2})
	if !r.Feasible || r.Steps != 1 {
		t.Fatalf("feasible=%v steps=%d", r.Feasible, r.Steps)
	}
	want := 1e6/1e9 + 1e-6
	if diff := r.TransferTime - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("transfer = %g, want %g", r.TransferTime, want)
	}
}

func TestSCCLEmptyDemand(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, 1e6)
	r := SolveSCCL(tp, d, SCCLOptions{MaxSteps: 2})
	if !r.Feasible {
		t.Fatal("empty demand should be trivially feasible")
	}
	if r.TransferTime != 0 {
		t.Fatalf("transfer = %g, want 0", r.TransferTime)
	}
}

func TestTACCLRestartsNeverHurt(t *testing.T) {
	// Best-of-N restarts is monotonically no worse than best-of-1 with
	// the same seed stream prefix.
	tp := topo.Internal2(2)
	d := collective.AllGather(tp.NumNodes(), gpuIDs(tp), 1, 1e6)
	one := SolveTACCL(tp, d, TACCLOptions{Seed: 11, Restarts: 1})
	many := SolveTACCL(tp, d, TACCLOptions{Seed: 11, Restarts: 25})
	if !many.Feasible {
		t.Skip("instance infeasible for this heuristic")
	}
	if one.Feasible && many.Schedule.FinishTime() > one.Schedule.FinishTime()+1e-12 {
		t.Fatal("more restarts produced a worse best schedule")
	}
}

func TestSPFRespectsMaxEpochs(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.AllToAll(3, gpuIDs(tp), 4, 1e6)
	r := SolveSPF(tp, d, 1)
	if r.Feasible {
		t.Fatal("4 chunks per pair cannot fit one epoch")
	}
}
