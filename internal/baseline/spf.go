package baseline

import (
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// SPFResult is the outcome of the shortest-path-first scheduler.
type SPFResult struct {
	Schedule  *schedule.Schedule
	SolveTime time.Duration
	Feasible  bool
}

// SolveSPF implements the shortest-path-first baseline of Zhao et al.
// (reference [31] in the paper): every (source, chunk, destination)
// triple is routed on the static α-plus-transmission shortest path and
// greedily list-scheduled, with no copy — each destination gets its own
// transmission even when a multicast would do. §2.1 notes this is the
// baseline that "fails to leverage copy".
func SolveSPF(t *topo.Topology, d *collective.Demand, maxEpochs int) *SPFResult {
	start := time.Now()
	tau := d.ChunkBytes / t.MaxCapacity()
	nL := t.NumLinks()
	delta := make([]int, nL)
	kappa := make([]int, nL)
	capChunks := make([]float64, nL)
	for l := 0; l < nL; l++ {
		lk := t.Link(topo.LinkID(l))
		if lk.Alpha > 0 {
			delta[l] = int(math.Ceil(lk.Alpha/tau - 1e-9))
		}
		capChunks[l] = lk.Capacity * tau / d.ChunkBytes
		if capChunks[l] >= 1-1e-9 {
			kappa[l] = 1
		} else {
			kappa[l] = int(math.Ceil(1/capChunks[l] - 1e-9))
		}
	}
	if maxEpochs <= 0 {
		maxEpochs = 8 * (1 + d.NumChunks()*d.NumNodes())
		for l := 0; l < nL; l++ {
			if h := 8 * (delta[l] + kappa[l]); h > maxEpochs {
				maxEpochs = h
			}
		}
	}

	// Static shortest paths (no congestion feedback, no copy).
	pathWeight := func(l int) float64 {
		lk := t.Link(topo.LinkID(l))
		return lk.Alpha + d.ChunkBytes/lk.Capacity
	}

	linkUsed := map[[2]int]float64{}
	windowFree := func(l, k int) bool {
		used := 0.0
		for kk := k - kappa[l] + 1; kk <= k; kk++ {
			if kk >= 0 {
				used += linkUsed[[2]int{l, kk}]
			}
		}
		return used+1 <= capChunks[l]*float64(kappa[l])+1e-9
	}

	var sends []schedule.Send
	res := &SPFResult{}
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(s, c, dst) {
					continue
				}
				path := dijkstraPath(t, s, dst, pathWeight)
				if path == nil {
					res.SolveTime = time.Since(start)
					return res
				}
				at := 0
				node := s
				for _, l := range path {
					k := at
					if t.IsSwitch(topo.NodeID(node)) {
						if !windowFree(l, k) {
							res.SolveTime = time.Since(start)
							return res
						}
					} else {
						for !windowFree(l, k) {
							k++
							if k > maxEpochs {
								res.SolveTime = time.Since(start)
								return res
							}
						}
					}
					linkUsed[[2]int{l, k}]++
					sends = append(sends, schedule.Send{
						Src: s, Chunk: c, Link: topo.LinkID(l), Epoch: k, Fraction: 1,
					})
					at = k + delta[l] + kappa[l]
					node = int(t.Link(topo.LinkID(l)).Dst)
				}
			}
		}
	}

	numEpochs := 0
	for _, snd := range sends {
		if snd.Epoch+1 > numEpochs {
			numEpochs = snd.Epoch + 1
		}
	}
	epc := make([]int, nL)
	copy(epc, kappa)
	anyKappa := false
	for _, k := range kappa {
		if k > 1 {
			anyKappa = true
		}
	}
	if !anyKappa {
		epc = nil
	}
	sch := &schedule.Schedule{
		Topo: t, Demand: d, Tau: tau, NumEpochs: numEpochs,
		Sends: sends, AllowCopy: true, EpochsPerChunk: epc,
	}
	if err := sch.Validate(); err != nil {
		res.SolveTime = time.Since(start)
		return res
	}
	res.Schedule = sch
	res.Feasible = true
	res.SolveTime = time.Since(start)
	return res
}
