// Command linkfailure demonstrates online replanning under churn: a
// Planner session solves a steady-state ALLTOALL, a link fails, and
// Planner.Replan absorbs the fault — incrementally when the incumbent
// LP basis can be reoptimized with a few dual-simplex pivots, and by a
// graceful cold re-solve when the churn is structural.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"teccl"
)

func main() {
	// Two NDv2-style chassis behind an InfiniBand switch.
	t := teccl.NDv2Mini(2)
	planner := teccl.NewPlanner(t, teccl.PlannerOptions{
		Defaults: teccl.Options{EpochMode: teccl.SlowestLink},
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Steady state: every GPU exchanges a 25 KB chunk with every other.
	plan, err := planner.Plan(ctx, teccl.Request{Demand: teccl.AllToAll(t, 1, 25e3)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state: %v, %d epochs, %d simplex iterations\n",
		plan.Solver, plan.Schedule.FinishEpoch()+1, plan.RootIterations)

	// Fault: one intra-chassis NVLink dies and a neighbor link degrades
	// to 90% bandwidth. The session re-solves its incumbent request
	// against the churned world; the caller's Topology is untouched.
	gpus := t.GPUs()
	replanned, err := planner.Replan(ctx, teccl.Delta{
		LinksDown: []teccl.LinkID{t.FindLink(gpus[2], gpus[3])},
		Scale:     []teccl.LinkScale{{Link: t.FindLink(gpus[0], gpus[1]), Capacity: 0.9}},
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "incremental (dual-simplex reoptimization from the incumbent basis)"
	if replanned.ReplanFallback {
		mode = "graceful fallback (cold crash-started solve)"
	}
	fmt.Printf("after failure: %s\n", mode)
	fmt.Printf("  %d pivots, finish %.2f us (was %.2f us)\n",
		replanned.RootIterations,
		replanned.Schedule.FinishTime()*1e6, plan.Schedule.FinishTime()*1e6)

	// The replanned schedule is re-validated against the churned
	// topology before Replan returns; simulate it to confirm.
	sim, err := teccl.Simulate(replanned.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated transfer time: %.2f us\n", sim.FinishTime*1e6)

	// Structural churn — here a straggler whose α inflation changes a
	// link's pipeline depth — degrades gracefully instead of erroring.
	straggler, err := planner.Replan(ctx, teccl.Delta{
		Scale: []teccl.LinkScale{{Link: 0, Alpha: 50}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after straggler: fallback=%v, finish %.2f us\n",
		straggler.ReplanFallback, straggler.Schedule.FinishTime()*1e6)

	st := planner.Stats()
	fmt.Printf("session: %d replans, %d incremental pivots, %d fallbacks\n",
		st.Replans, st.ReplanPivots, st.ReplanFallbacks)
}
