// Command churnstream demonstrates long-lived replanning under a churn
// stream: one Planner session absorbs a sequence of topology and demand
// deltas — capacity wobble, a permanent link failure, structural growth
// (a new node joining mid-stream), and demand churn via AddDemand — and
// reports, per delta, whether the session reoptimized its incumbent
// basis incrementally, proactively re-based, or degraded to a cold
// crash-started solve. See the "Replanning under churn" section of the
// package docs for the degradation ladder this walks.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"teccl"
)

func main() {
	t := teccl.NDv2Mini(2)
	planner := teccl.NewPlanner(t, teccl.PlannerOptions{
		Defaults: teccl.Options{EpochMode: teccl.SlowestLink},
		// Re-base eagerly once incremental replans cost half the pivot
		// budget: at this scale a decayed basis is cheaper to replace
		// than to keep repairing.
		Replan: teccl.ReplanOptions{RebaseThreshold: 0.5},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Steady state: a sparse custom exchange — every GPU ships chunk 0 to
	// its ring neighbor — leaving chunk 1 free for demand churn later.
	gpus := t.GPUs()
	base := teccl.NewDemand(t, 2, 25e3)
	for i := range gpus {
		base.Set(int(gpus[i]), 0, int(gpus[(i+1)%len(gpus)]))
	}
	plan, err := planner.Plan(ctx, teccl.Request{Demand: base})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state: %v, finish %.2f us, %d simplex iterations\n",
		plan.Solver, plan.Schedule.FinishTime()*1e6, plan.RootIterations)

	fast := t.FindLink(gpus[0], gpus[1])
	spare := t.Link(fast)

	// AddDemand appends fresh traffic to the incumbent: gpu0 additionally
	// ships its second chunk to gpu5. The new columns are priced into the
	// live LP and the padded basis is reoptimized — no rebuild.
	extra := teccl.NewDemand(t, 2, 25e3)
	extra.Set(int(gpus[0]), 1, int(gpus[5]))

	stream := []struct {
		name  string
		delta teccl.Delta
	}{
		{"degrade fastest link to 80%",
			teccl.Delta{Scale: []teccl.LinkScale{{Link: fast, Capacity: 0.8}}}},
		{"restore it",
			teccl.Delta{Scale: []teccl.LinkScale{{Link: fast, Capacity: 1.25}}}},
		{"append demand gpu0 -> gpu5 (chunk 1)",
			teccl.Delta{AddDemand: extra}},
		{"permanent NVLink failure",
			teccl.Delta{LinksDown: []teccl.LinkID{t.FindLink(gpus[2], gpus[3])}}},
		{"node joins with two links (structural growth)",
			teccl.Delta{
				AddNodes: []teccl.Node{{Name: "joiner"}},
				AddLinks: []teccl.Link{
					{Src: teccl.NodeID(t.NumNodes()), Dst: gpus[0], Capacity: spare.Capacity, Alpha: spare.Alpha},
					{Src: gpus[0], Dst: teccl.NodeID(t.NumNodes()), Capacity: spare.Capacity, Alpha: spare.Alpha},
				}}},
		{"degrade fastest link again",
			teccl.Delta{Scale: []teccl.LinkScale{{Link: fast, Capacity: 0.8}}}},
	}

	for _, step := range stream {
		rp, err := planner.Replan(ctx, step.delta)
		if err != nil {
			log.Fatalf("%s: %v", step.name, err)
		}
		mode := "incremental"
		switch {
		case rp.ReBased:
			mode = "re-based"
		case rp.ReplanFallback:
			mode = "cold fallback"
		}
		fmt.Printf("%-45s %-13s %5d pivots, finish %.2f us\n",
			step.name, mode, rp.RootIterations, rp.Schedule.FinishTime()*1e6)
	}

	st := planner.Stats()
	fmt.Printf("\nsession: %d replans — %d incremental pivots, %d fallbacks "+
		"(%d structural, %d budget), %d re-bases\n",
		st.Replans, st.ReplanIncrementalPivots, st.ReplanFallbacks,
		st.ReplanFallbackStructural, st.ReplanFallbackBudget, st.ReBases)
}
