// Command multitenant demonstrates §5's multi-tenant support: two
// training jobs share one switched cluster, their demands are unioned,
// and a single joint solve schedules both without violating capacity.
// Compare against solving each tenant as if it owned the network.
//
// The example runs the serving shape this scenario implies in
// production: an embedded teccld daemon (the same Server cmd/teccld
// boots) fronted by the wire client. All four MILP solves flow through
// one daemon session — one topology, a stream of demands, warm bases
// carried between them — and the planning code is written against
// teccl.PlannerAPI, so swapping the remote session for an in-process
// teccl.NewPlanner changes one line.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"teccl"
)

func main() {
	// Two chassis of the Internal-2 style topology: 4 GPUs behind one
	// switch, GPU pairs bridged inside each chassis.
	t := teccl.Internal2(2)
	gpus := t.GPUs()

	// Tenant A runs an ALLGATHER over the first chassis pair plus one
	// remote GPU; tenant B gathers into the remaining GPU.
	const chunk = 1 << 20 // 1 MiB
	tenantA := teccl.NewDemand(t, 1, chunk)
	for _, s := range gpus[:3] {
		for _, d := range gpus[:3] {
			if s != d {
				tenantA.Set(int(s), 0, int(d))
			}
		}
	}
	tenantB := teccl.NewDemand(t, 1, chunk)
	for _, s := range gpus[:3] {
		tenantB.Set(int(s), 0, int(gpus[3]))
	}

	// An embedded planner daemon, exactly what `teccld -listen :7447`
	// serves; the client dials it over loopback HTTP.
	srv := teccl.NewServer(teccl.ServerOptions{})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c, err := teccl.Dial(hs.URL, teccl.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	// The session: remote here, but everything below only needs the
	// PlannerAPI surface, which teccl.NewPlanner satisfies too.
	var planner teccl.PlannerAPI = c.Planner(t)
	defer planner.Close()
	// The daemon has no ForceMILP session policy; pin the formulation
	// per request instead.
	milp := func(d *teccl.Demand, opt *teccl.Options) (*teccl.Plan, error) {
		return planner.Plan(ctx, teccl.Request{Demand: d, Options: opt, Solver: teccl.SolverMILP})
	}

	solo := func(name string, d *teccl.Demand) float64 {
		plan, err := milp(d, nil)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sim, err := teccl.Simulate(plan.Schedule)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%s alone: %d epochs, %.2f us\n",
			name, plan.Schedule.FinishEpoch()+1, sim.FinishTime*1e6)
		return sim.FinishTime
	}
	ta := solo("tenant A", tenantA)
	tb := solo("tenant B", tenantB)

	// Joint schedule: the union demand shares the wires fairly under one
	// capacity-feasible plan (§5 "Use in multi-tenant clusters").
	joint := tenantA.Clone()
	joint.Or(tenantB)
	res, err := milp(joint, nil)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := teccl.Simulate(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint:  %d epochs, %.2f us\n",
		res.Schedule.FinishEpoch()+1, sim.FinishTime*1e6)
	fmt.Printf("\nnaive lower bound if run back to back: %.2f us\n", (ta+tb)*1e6)
	fmt.Printf("joint schedule interleaves both tenants on shared links,\n")
	fmt.Printf("finishing in %.2f us total.\n", sim.FinishTime*1e6)

	// Tenant priority (§5): weight tenant B's deliveries 10x and watch its
	// chunks ship first on contended links. The priority function is
	// sampled over the demanded triples client-side, so it crosses the
	// wire intact.
	prioOpt := teccl.Options{
		Priority: func(src, chunk, dst int) float64 {
			if tenantB.Wants(src, chunk, dst) {
				return 10
			}
			return 1
		},
	}
	prio, err := milp(joint, &prioOpt)
	if err != nil {
		log.Fatal(err)
	}
	st := planner.Stats()
	fmt.Printf("\ndaemon session served %d solves: %d warm starts, %d epoch-estimate cache hits\n",
		st.Requests, st.WarmStartHits, st.EpochCacheHits)
	bFinish := 0
	for _, snd := range prio.Schedule.Sends {
		l := t.Link(snd.Link)
		if tenantB.Wants(snd.Src, snd.Chunk, int(l.Dst)) {
			if ae := prio.Schedule.ArrivalEpoch(snd); ae > bFinish {
				bFinish = ae
			}
		}
	}
	fmt.Printf("\nwith tenant B prioritized 10x, B's last chunk lands by epoch %d\n", bFinish)
	fmt.Printf("(joint schedule finishes everything by epoch %d)\n", prio.Schedule.FinishEpoch())
}
