// Command quickstart solves a small ALLGATHER with TE-CCL and prints the
// schedule and its cost — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"teccl"
)

func main() {
	// A single DGX1 box: 8 GPUs, 16 NVLinks, no switch.
	t := teccl.DGX1()

	// Every GPU shares one 25 KB chunk with every other GPU.
	demand := teccl.AllGather(t, 1, 25e3)

	// Solve lets the library pick the right formulation (the general
	// MILP here, since ALLGATHER benefits from in-network copy).
	res, err := teccl.Solve(t, demand, teccl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved %s in %v (optimal=%v, gap=%.1f%%)\n",
		t.Name, res.SolveTime, res.Optimal, 100*res.Gap)
	fmt.Printf("epochs used: %d of %d horizon, tau=%.2g s\n",
		res.Schedule.FinishEpoch()+1, res.Epochs, res.Tau)

	// Execute the schedule in continuous time under the alpha-beta model.
	sim, err := teccl.Simulate(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer time: %.2f us\n", sim.FinishTime*1e6)
	fmt.Printf("algorithmic bandwidth: %.2f GB/s\n", sim.AlgoBandwidth/1e9)
	fmt.Printf("total bytes on wire: %.0f (demand: %.0f)\n",
		sim.TotalBytes, demand.TotalBytes())

	// Print the schedule, epoch by epoch.
	fmt.Println("\nschedule:")
	for epoch := 0; epoch <= res.Schedule.FinishEpoch(); epoch++ {
		for _, snd := range res.Schedule.Sends {
			if snd.Epoch != epoch {
				continue
			}
			l := t.Link(snd.Link)
			fmt.Printf("  epoch %d: %s -> %s  (chunk %d of gpu%d)\n",
				epoch, t.Node(l.Src).Name, t.Node(l.Dst).Name, snd.Chunk, snd.Src)
		}
	}
}
