// Command quickstart solves a small ALLGATHER with TE-CCL and prints the
// schedule and its cost — the minimal end-to-end use of the library.
//
// The entry point is a Planner session: NewPlanner pins a topology and
// caches per-topology state, Plan answers one request under a context.
// (The old free functions — Solve, SolveLP, SolveMILP, SolveAStar —
// still work and now route through a single-use session; hold a Planner
// like this when you solve more than once per topology.)
//
// Sessions also absorb churn online — link failures, stragglers,
// demand shifts — via Planner.Replan; see examples/linkfailure.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"teccl"
)

func main() {
	// A single DGX1 box: 8 GPUs, 16 NVLinks, no switch.
	t := teccl.DGX1()

	// A long-lived session for this topology. PlannerOptions carries the
	// default solve options and the solver-selection policy; the zero
	// value means paper defaults and the automatic policy (the general
	// MILP here, since ALLGATHER benefits from in-network copy).
	planner := teccl.NewPlanner(t, teccl.PlannerOptions{})

	// Every GPU shares one 25 KB chunk with every other GPU. The context
	// bounds the solve: cancellation and deadlines reach all the way into
	// the solver inner loops.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	plan, err := planner.Plan(ctx, teccl.Request{
		Demand: teccl.AllGather(t, 1, 25e3),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved %s via %v in %v (optimal=%v, gap=%.1f%%)\n",
		t.Name, plan.Solver, plan.SolveTime, plan.Optimal, 100*plan.Gap)
	fmt.Printf("epochs used: %d of %d horizon, tau=%.2g s\n",
		plan.Schedule.FinishEpoch()+1, plan.Epochs, plan.Tau)

	// A second, identical request demonstrates session reuse: the
	// planner warm-starts from (or outright replays) the first solve.
	again, err := planner.Plan(ctx, teccl.Request{
		Demand: teccl.AllGather(t, 1, 25e3),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat request: %v (cache hit=%v, warm start=%v)\n",
		again.SolveTime, again.CacheHit, again.WarmStart)

	// Execute the schedule in continuous time under the alpha-beta model.
	sim, err := teccl.Simulate(plan.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer time: %.2f us\n", sim.FinishTime*1e6)
	fmt.Printf("algorithmic bandwidth: %.2f GB/s\n", sim.AlgoBandwidth/1e9)

	// Print the schedule, epoch by epoch.
	fmt.Println("\nschedule:")
	for epoch := 0; epoch <= plan.Schedule.FinishEpoch(); epoch++ {
		for _, snd := range plan.Schedule.Sends {
			if snd.Epoch != epoch {
				continue
			}
			l := t.Link(snd.Link)
			fmt.Printf("  epoch %d: %s -> %s  (chunk %d of gpu%d)\n",
				epoch, t.Node(l.Src).Name, t.Node(l.Dst).Name, snd.Chunk, snd.Src)
		}
	}
}
