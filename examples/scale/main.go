// Command scale exercises the two scaling paths of §4 on a topology too
// large for the one-shot MILP: the LP form for an ALLTOALL and the A*
// round partitioning for an ALLGATHER, finishing with an MSCCL-style XML
// export of the A* schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"teccl"
)

func main() {
	// Six Internal-2 chassis: 12 GPUs behind a shared switch.
	t := teccl.Internal2(6)
	fmt.Printf("topology %s: %d GPUs, %d links\n",
		t.Name, len(t.GPUs()), t.NumLinks())

	const chunk = 4 << 20 // 4 MiB

	// ALLTOALL scales through the LP (§4.1): copy cannot help, so the
	// linear program is exact and fast. Slowest-link epochs with an epoch
	// multiplier trade schedule granularity for solver time at this scale
	// (the EM column of Table 4).
	atoa := teccl.AllToAll(t, 1, chunk)
	lpRes, err := teccl.SolveLP(t, atoa, teccl.Options{
		EpochMode: teccl.SlowestLink, EpochMultiplier: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	lpSim, err := teccl.Simulate(lpRes.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALLTOALL  via LP: solve %v, transfer %.1f us, %.2f GB/s algo bw\n",
		lpRes.SolveTime.Round(1e6), lpSim.FinishTime*1e6, lpSim.AlgoBandwidth/1e9)

	// ALLGATHER needs copy, so it scales through A* rounds (§4.2).
	ag := teccl.AllGather(t, 1, chunk)
	asRes, err := teccl.SolveAStar(t, ag, teccl.Options{
		EpochMode: teccl.SlowestLink, GapLimit: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	asSim, err := teccl.Simulate(asRes.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALLGATHER via A*: solve %v (%d rounds), transfer %.1f us, %.2f GB/s algo bw\n",
		asRes.SolveTime.Round(1e6), asRes.Rounds, asSim.FinishTime*1e6, asSim.AlgoBandwidth/1e9)

	// Export the A* schedule for an MSCCL-style runtime.
	xml, err := teccl.ExportMSCCL(asRes.Schedule, "allgather")
	if err != nil {
		log.Fatal(err)
	}
	const out = "allgather-internal2-6c.xml"
	if err := os.WriteFile(out, xml, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSCCL export written to %s (%d bytes)\n", out, len(xml))
}
