// Command scale exercises the two scaling paths of §4 on a topology too
// large for the one-shot MILP: the LP form for an ALLTOALL and the A*
// round partitioning for an ALLGATHER, finishing with an MSCCL-style XML
// export of the A* schedule. Both requests go through one Planner
// session, so the second solve reuses the session's cached epoch
// estimates and tau derivations.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"teccl"
)

func main() {
	// Six Internal-2 chassis: 12 GPUs behind a shared switch.
	t := teccl.Internal2(6)
	fmt.Printf("topology %s: %d GPUs, %d links\n",
		t.Name, len(t.GPUs()), t.NumLinks())

	const chunk = 4 << 20 // 4 MiB
	ctx := context.Background()

	// One session, default options tuned for this scale: slowest-link
	// epochs with an epoch multiplier trade schedule granularity for
	// solver time (the EM column of Table 4).
	planner := teccl.NewPlanner(t, teccl.PlannerOptions{
		Defaults: teccl.Options{EpochMode: teccl.SlowestLink, EpochMultiplier: 2},
	})

	// ALLTOALL scales through the LP (§4.1): copy cannot help, so the
	// linear program is exact and fast. The automatic policy picks it on
	// its own; Request.Solver is spelled out here for the narrative.
	atoa := teccl.AllToAll(t, 1, chunk)
	lpPlan, err := planner.Plan(ctx, teccl.Request{Demand: atoa, Solver: teccl.SolverLP})
	if err != nil {
		log.Fatal(err)
	}
	lpSim, err := teccl.Simulate(lpPlan.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALLTOALL  via %v: solve %v, transfer %.1f us, %.2f GB/s algo bw\n",
		lpPlan.Solver, lpPlan.SolveTime.Round(1e6), lpSim.FinishTime*1e6, lpSim.AlgoBandwidth/1e9)

	// ALLGATHER needs copy, so it scales through A* rounds (§4.2). The
	// per-request options override the session defaults.
	ag := teccl.AllGather(t, 1, chunk)
	asOpt := teccl.Options{EpochMode: teccl.SlowestLink, GapLimit: 0.2}
	asPlan, err := planner.Plan(ctx, teccl.Request{
		Demand: ag, Solver: teccl.SolverAStar, Options: &asOpt,
	})
	if err != nil {
		log.Fatal(err)
	}
	asSim, err := teccl.Simulate(asPlan.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALLGATHER via %v: solve %v (%d rounds), transfer %.1f us, %.2f GB/s algo bw\n",
		asPlan.Solver, asPlan.SolveTime.Round(1e6), asPlan.Rounds, asSim.FinishTime*1e6, asSim.AlgoBandwidth/1e9)

	// Export the A* schedule for an MSCCL-style runtime.
	xml, err := teccl.ExportMSCCL(asPlan.Schedule, "allgather")
	if err != nil {
		log.Fatal(err)
	}
	const out = "allgather-internal2-6c.xml"
	if err := os.WriteFile(out, xml, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSCCL export written to %s (%d bytes)\n", out, len(xml))
}
