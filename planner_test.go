package teccl

// Public-facade tests and the reuse benchmark for the Planner session
// API. BenchmarkPlannerReuse measures the satellite claim directly: N
// sequential sweep points through one Planner versus fresh free-function
// calls; TestPlannerSweepReuseCounters asserts the reuse counters the
// benchmark reports are really nonzero.

import (
	"context"
	"math"
	"testing"
	"time"
)

// sweepPoint is one request of the reuse workload.
type sweepPoint struct {
	d   *Demand
	opt *Options
}

// sweepPoints builds the reuse workload: a chunk-size sweep (power-of-
// two steps, so structurally identical chunk-unit models replay) plus
// two-chunk variants at different horizons (different models, so bases
// chain by variable name instead).
func sweepPoints(t *Topology) []sweepPoint {
	var ps []sweepPoint
	for _, bytes := range []float64{64e3, 256e3, 1024e3, 4096e3} {
		ps = append(ps, sweepPoint{d: AllToAll(t, 1, bytes/float64(len(t.GPUs())))})
	}
	ps = append(ps, sweepPoint{d: AllToAll(t, 2, 25e3)})
	ps = append(ps, sweepPoint{d: AllToAll(t, 2, 25e3), opt: &Options{Epochs: 18}})
	return ps
}

func TestPlannerSweepReuseCounters(t *testing.T) {
	tt := ZeroAlpha(DGX1())
	planner := NewPlanner(tt, PlannerOptions{})
	ctx := context.Background()
	var replays, warm int
	for i, p := range sweepPoints(tt) {
		plan, err := planner.Plan(ctx, Request{Demand: p.d, Options: p.opt})
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if plan.CacheHit {
			replays++
		}
		if plan.WarmStart {
			warm++
		}
	}
	st := planner.Stats()
	if st.ScheduleReplays == 0 || replays == 0 {
		t.Fatalf("sweep through one Planner produced no schedule replays (stats %+v)", st)
	}
	if st.WarmStartHits == 0 || warm == 0 {
		t.Fatalf("sweep through one Planner produced no warm-basis hits (stats %+v)", st)
	}
	// Every sweep point is a distinct demand, so the epoch cache cannot
	// hit here (TestPlannerReplaysIdenticalLPRequest covers it); the tau
	// cache serves repeated derivations within and across requests.
	if st.TauCacheHits == 0 {
		t.Fatalf("sweep through one Planner produced no tau cache hits (stats %+v)", st)
	}
}

func TestPlannerSweepMatchesFreeFunctions(t *testing.T) {
	tt := ZeroAlpha(DGX1())
	planner := NewPlanner(tt, PlannerOptions{})
	ctx := context.Background()
	for i, p := range sweepPoints(tt) {
		plan, err := planner.Plan(ctx, Request{Demand: p.d, Options: p.opt})
		if err != nil {
			t.Fatalf("point %d planner: %v", i, err)
		}
		var fopt Options
		if p.opt != nil {
			fopt = *p.opt
		}
		free, err := SolveLP(tt, p.d, fopt)
		if err != nil {
			t.Fatalf("point %d free: %v", i, err)
		}
		// Warm-started solves walk a different pivot path, so objectives
		// agree to rounding, not bit-exactly; feasibility is exact.
		if diff := math.Abs(plan.Objective - free.Objective); diff > 1e-9*(1+math.Abs(free.Objective)) {
			t.Fatalf("point %d: planner objective %g, free %g", i, plan.Objective, free.Objective)
		}
		if err := plan.Schedule.Validate(); err != nil {
			t.Fatalf("point %d: planner schedule invalid: %v", i, err)
		}
	}
}

// BenchmarkPlannerReuse solves N sequential sweep points through one
// long-lived Planner session versus fresh free-function calls. The
// "sizes" pair is the replay-dominated chunk-size sweep (the session
// solves once and replays the rest); the "mixed" pair adds the
// chunk-count variants whose models differ, so the session's win there
// is warm-started bases rather than replay. The replays/warm metrics
// are the session's reuse counters per iteration.
func BenchmarkPlannerReuse(b *testing.B) {
	tt := ZeroAlpha(DGX1())
	all := sweepPoints(tt)
	sizesOnly := all[:4]
	ctx := context.Background()

	session := func(points []sweepPoint) func(*testing.B) {
		return func(b *testing.B) {
			var replays, warm float64
			for i := 0; i < b.N; i++ {
				planner := NewPlanner(tt, PlannerOptions{})
				for _, p := range points {
					if _, err := planner.Plan(ctx, Request{Demand: p.d, Options: p.opt}); err != nil {
						b.Fatal(err)
					}
				}
				st := planner.Stats()
				replays += float64(st.ScheduleReplays)
				warm += float64(st.WarmStartHits)
			}
			b.ReportMetric(replays/float64(b.N), "replays/op")
			b.ReportMetric(warm/float64(b.N), "warmhits/op")
		}
	}
	fresh := func(points []sweepPoint) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range points {
					var opt Options
					if p.opt != nil {
						opt = *p.opt
					}
					if _, err := SolveLP(tt, p.d, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("sizes-session", session(sizesOnly))
	b.Run("sizes-fresh", fresh(sizesOnly))
	b.Run("mixed-session", session(all))
	b.Run("mixed-fresh", fresh(all))
}

func TestPlannerHonorsRequestTimeout(t *testing.T) {
	// Facade-level regression for the uniform deadline: an NDv2-scale LP
	// request through the Planner returns promptly under a caller
	// deadline (DeadlineExceeded, not a minutes-long grind).
	tt := NDv2Mini(2)
	d := AllToAll(tt, 1, 25e3)
	planner := NewPlanner(tt, PlannerOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := planner.Plan(ctx, Request{Demand: d})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline ignored: %v", elapsed)
	}
	if err == nil {
		t.Skip("machine solved the instance inside the deadline")
	}
}
