package teccl

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tp := Ring(4, 1e9, 0)
	d := AllGather(tp, 1, 1e6)
	res, err := Solve(tp, d, Options{Epochs: 4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	r, err := Simulate(res.Schedule)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if r.FinishTime <= 0 {
		t.Fatal("no finish time")
	}
}

func TestSolveDispatchesLPForAllToAll(t *testing.T) {
	tp := Ring(3, 1e9, 0)
	d := AllToAll(tp, 1, 1e6)
	res, err := Solve(tp, d, Options{Epochs: 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// The LP path produces no-copy schedules.
	if res.Schedule.AllowCopy {
		t.Fatal("ALLTOALL should dispatch to the LP (no-copy) solver")
	}
}

func TestSolveDispatchesMILPForSmallAllGather(t *testing.T) {
	tp := Ring(3, 1e9, 0)
	d := AllGather(tp, 1, 1e6)
	res, err := Solve(tp, d, Options{Epochs: 3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Schedule.AllowCopy || !res.Optimal {
		t.Fatal("small ALLGATHER should dispatch to the optimal MILP")
	}
	if res.Rounds != 0 {
		t.Fatal("MILP result should not report A* rounds")
	}
}

func TestSolveDispatchesAStarForLargeAllGather(t *testing.T) {
	tp := Internal2(6) // 12 GPUs: above the MILP cutoff
	d := AllGather(tp, 1, 1e6)
	res, err := Solve(tp, d, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Rounds < 1 {
		t.Fatal("large ALLGATHER should dispatch to A*")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
}

func TestDemandBuilders(t *testing.T) {
	tp := Line(3, 1e9, 0)
	if got := Broadcast(tp, 0, 2, 10).Count(); got != 4 {
		t.Fatalf("broadcast count = %d", got)
	}
	if got := Scatter(tp, 0, 1, 10).Count(); got != 2 {
		t.Fatalf("scatter count = %d", got)
	}
	if got := Gather(tp, 0, 1, 10).Count(); got != 2 {
		t.Fatalf("gather count = %d", got)
	}
	if got := ReduceScatter(tp, 10).Count(); got != 6 {
		t.Fatalf("reducescatter count = %d", got)
	}
	d := NewDemand(tp, 1, 10)
	d.Set(0, 0, 2)
	if d.Count() != 1 {
		t.Fatal("custom demand")
	}
}

func TestExportMSCCLFromSolve(t *testing.T) {
	tp := Ring(3, 1e9, 0)
	d := AllGather(tp, 1, 1e6)
	res, err := SolveMILP(tp, d, Options{Epochs: 3})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	out, err := ExportMSCCL(res.Schedule, "allgather")
	if err != nil {
		t.Fatalf("ExportMSCCL: %v", err)
	}
	if !strings.Contains(string(out), `coll="allgather"`) {
		t.Fatal("export missing collective name")
	}
}

func TestMultiTenantUnion(t *testing.T) {
	// §5: multi-tenant demand = union of tenant demands.
	tp := Ring(4, 1e9, 0)
	gpus := tp.GPUs()
	tenantA := NewDemand(tp, 1, 1e6)
	tenantA.Set(int(gpus[0]), 0, int(gpus[1]))
	tenantB := NewDemand(tp, 1, 1e6)
	tenantB.Set(int(gpus[2]), 0, int(gpus[3]))
	tenantA.Or(tenantB)
	res, err := SolveMILP(tp, tenantA, Options{Epochs: 3})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if res.Schedule.FinishEpoch() != 0 {
		t.Fatalf("both tenants should finish in epoch 0, got %d", res.Schedule.FinishEpoch())
	}
}

func TestBaselinesAccessible(t *testing.T) {
	tp := Ring(4, 1e9, 0)
	d := AllGather(tp, 1, 1e6)
	if r := BaselineTACCL(tp, d, TACCLOptions{Seed: 1, Restarts: 5}); !r.Feasible {
		t.Fatal("TACCL baseline failed")
	}
	if r := BaselineSCCL(tp, d, SCCLOptions{MaxSteps: 4}); !r.Feasible {
		t.Fatal("SCCL baseline failed")
	}
	if r := BaselineSPF(tp, d, 0); !r.Feasible {
		t.Fatal("SPF baseline failed")
	}
	if _, err := BaselineRingAllGather(tp, 1e6); err != nil {
		t.Fatalf("ring baseline: %v", err)
	}
	if _, err := BaselineRingReduceScatter(tp, 1e6); err != nil {
		t.Fatalf("ring RS baseline: %v", err)
	}
}

func TestEstimateAndTauHelpers(t *testing.T) {
	tp := DGX1()
	d := AllGather(tp, 1, 25e3)
	tau := DeriveTau(tp, 25e3, FastestLink, 0)
	if tau <= 0 {
		t.Fatal("bad tau")
	}
	if k := EstimateEpochs(tp, d, tau); k < 2 {
		t.Fatalf("estimate = %d", k)
	}
}
