# TE-CCL reproduction — build, test, and benchmark entry points.
#
# `make ci` is the gate every change must pass: vet, build, the full test
# suite, and a one-shot smoke of the paper's solver-time benchmark (Fig 5)
# so solver regressions surface immediately.

GO ?= go

.PHONY: ci vet build test bench-smoke bench-smoke-short bench tables

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the Fig 5 solver-time sweep plus the solver
# micro-benchmarks; fast enough for CI, loud enough to catch a perf cliff.
bench-smoke:
	$(GO) test -run xxx -bench 'Fig5SolverTime|SimplexTransport$$' -benchtime 1x .

# The same smoke under -short (GitHub Actions): trimmed sweeps, and the
# minutes-scale benches (e.g. NDv2AllToAll) skip themselves.
bench-smoke-short:
	$(GO) test -short -run xxx -bench 'Fig5SolverTime|SimplexTransport$$' -benchtime 1x .

# The full benchmark suite (one iteration each; wall-clock heavy).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate every paper table/figure via the CLI harness.
tables:
	$(GO) run ./cmd/benchtables
