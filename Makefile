# TE-CCL reproduction — build, test, and benchmark entry points.
#
# `make ci` is the gate every change must pass: vet, build, the full test
# suite, and a one-shot smoke of the paper's solver-time benchmark (Fig 5)
# so solver regressions surface immediately.

GO ?= go

.PHONY: ci vet lint build test race bench-smoke bench-smoke-short bench tables api-compat daemon-smoke

ci: vet lint build test race api-compat daemon-smoke bench-smoke

# vet gates on the stock analyzer, formatting, and the repo's own
# invariant suite: a gofmt diff anywhere or a tecclvet diagnostic
# (layering, wire schema lock, solver cancellation polling, float
# comparisons, init-time registration) fails the target.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run teccl/cmd/tecclvet ./...

# lint is the deep static pass: tecclvet plus staticcheck and
# govulncheck when they are installed (the CI lint job installs both;
# locally they are optional so a bare toolchain can still run make ci).
lint:
	$(GO) run teccl/cmd/tecclvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

# The API-compatibility gate: every downstream caller of the public
# facade — the examples and both binaries — must build and vet cleanly,
# so a facade change that breaks callers fails CI even if the library
# itself still compiles.
api-compat:
	$(GO) build ./examples/... ./cmd/...
	$(GO) vet ./examples/... ./cmd/...

test:
	$(GO) test ./...

# The race detector over every package: the concurrent branch-and-bound
# and batched sweep solving are only trustworthy if this stays clean.
race:
	$(GO) test -race ./...

# End-to-end smoke of the serving path: build both binaries, boot a real
# teccld on a localhost port, drive it through the CLI (health poll,
# two plans over one fabric — the second must hit the session's replay
# cache — then the session table), and require a clean SIGTERM drain.
daemon-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/teccld ./cmd/teccld; \
	$(GO) build -o $$tmp/teccl ./cmd/teccl; \
	$$tmp/teccld -listen 127.0.0.1:17447 & pid=$$!; \
	addr=http://127.0.0.1:17447; \
	for i in $$(seq 1 50); do \
		if $$tmp/teccl health -daemon $$addr >/dev/null 2>&1; then break; fi; \
		sleep 0.2; \
	done; \
	$$tmp/teccl health -daemon $$addr; \
	$$tmp/teccl plan -daemon $$addr -topo dgx1 -coll alltoall -chunk-bytes 25e3 -q; \
	$$tmp/teccl plan -daemon $$addr -topo dgx1 -coll alltoall -chunk-bytes 25e3 -q \
		| tee /dev/stderr | grep -q "schedule-replay cache"; \
	$$tmp/teccl sessions -daemon $$addr; \
	kill -TERM $$pid; \
	wait $$pid

# One iteration of the Fig 5 solver-time sweep plus the solver and
# concurrency micro-benchmarks across all packages; fast enough for CI,
# loud enough to catch a perf cliff.
bench-smoke:
	$(GO) test -run xxx -bench 'Fig5SolverTime|SimplexTransport$$|MILPWorkers|Sweep(Rebuilt|Batched)|PlannerReuse' -benchtime 1x ./...

# The same smoke under -short (GitHub Actions): trimmed sweeps, and the
# minutes-scale benches (e.g. NDv2AllToAll) skip themselves.
bench-smoke-short:
	$(GO) test -short -run xxx -bench 'Fig5SolverTime|SimplexTransport$$|MILPWorkers|Sweep(Rebuilt|Batched)|PlannerReuse' -benchtime 1x ./...

# The full benchmark suite (one iteration each; wall-clock heavy).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Regenerate every paper table/figure via the CLI harness.
tables:
	$(GO) run ./cmd/benchtables
