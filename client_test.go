package teccl

// Remote-vs-local equivalence tests: a RemotePlanner speaking to an
// embedded Server must answer every request a local Planner answers,
// with the same objectives — the daemon changes where the solve runs,
// never what it returns.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

// newRemote starts an embedded daemon and dials it, returning the
// client and the server for direct inspection.
func newRemote(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := NewServer(ServerOptions{})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	c, err := Dial(hs.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestRemotePlannerMatchesLocal(t *testing.T) {
	tp := DGX1()
	d := AllToAll(tp, 1, 25e3)
	ctx := context.Background()

	local := NewPlanner(tp, PlannerOptions{})
	defer local.Close()
	c, _ := newRemote(t)
	remote := c.Planner(tp)
	defer remote.Close()

	lp, err := local.Plan(ctx, Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := remote.Plan(ctx, Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Objective != lp.Objective {
		t.Fatalf("remote objective %g != local %g", rp.Objective, lp.Objective)
	}
	if rp.Solver != lp.Solver {
		t.Fatalf("remote solver %v != local %v", rp.Solver, lp.Solver)
	}
	if err := rp.Schedule.Validate(); err != nil {
		t.Fatalf("remote schedule invalid after rebinding: %v", err)
	}
	if rp.Schedule.FinishEpoch() != lp.Schedule.FinishEpoch() {
		t.Fatalf("remote finish %d != local %d", rp.Schedule.FinishEpoch(), lp.Schedule.FinishEpoch())
	}

	// Replan the same churn on both; the remote schedule must rebind to
	// the daemon's post-churn topology snapshot and stay valid.
	delta := Delta{LinksDown: []LinkID{0}}
	lrp, err := local.Replan(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	rrp, err := remote.Replan(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if rrp.Objective != lrp.Objective {
		t.Fatalf("remote replan objective %g != local %g", rrp.Objective, lrp.Objective)
	}
	if !rrp.Replanned {
		t.Fatal("remote replan not marked replanned")
	}
	if err := rrp.Schedule.Validate(); err != nil {
		t.Fatalf("remote replan schedule invalid: %v", err)
	}
	for _, snd := range rrp.Schedule.Sends {
		if snd.Link == 0 {
			t.Fatal("remote replan schedule uses the downed link")
		}
	}
	if remote.Topology().NumLinks() != local.Topology().NumLinks() {
		t.Fatalf("post-churn topologies diverge: remote %d links, local %d",
			remote.Topology().NumLinks(), local.Topology().NumLinks())
	}

	// Stats travel the wire: the remote session has served both solves.
	if st := remote.Stats(); st.Requests == 0 || st.Replans != 1 {
		t.Fatalf("remote stats = %+v, want ≥1 request and 1 replan", st)
	}
}

func TestRemotePlannerPriorityParity(t *testing.T) {
	// A priority function crosses the wire as sampled weights and must
	// shift the objective exactly as it does locally.
	tp := DGX1()
	d := AllToAll(tp, 1, 25e3)
	ctx := context.Background()
	pri := func(src, chunk, dst int) float64 {
		if dst == 1 {
			return 10
		}
		return 1
	}
	opt := Options{Priority: pri}

	lres, err := NewPlanner(tp, PlannerOptions{}).Plan(ctx, Request{Demand: d, Options: &opt})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newRemote(t)
	remote := c.Planner(tp)
	defer remote.Close()
	rres, err := remote.Plan(ctx, Request{Demand: d.Clone(), Options: &opt})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Objective != lres.Objective {
		t.Fatalf("priority objective: remote %g != local %g", rres.Objective, lres.Objective)
	}
}

func TestRemotePlannerRejectsLinkCapacity(t *testing.T) {
	c, _ := newRemote(t)
	remote := c.Planner(DGX1())
	defer remote.Close()
	opt := Options{LinkCapacity: func(l LinkID, epoch int) float64 { return 1 }}
	_, err := remote.Plan(context.Background(), Request{Demand: AllToAll(DGX1(), 1, 25e3), Options: &opt})
	if err == nil {
		t.Fatal("LinkCapacity function silently crossed the wire")
	}
}

func TestRemotePlannerLifecycle(t *testing.T) {
	tp := DGX1()
	d := AllToAll(tp, 1, 25e3)
	ctx := context.Background()
	c, _ := newRemote(t)

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
	remote := c.Planner(tp)
	if _, err := remote.Replan(ctx, Delta{}); err == nil {
		t.Fatal("Replan before any Plan succeeded")
	}
	if _, err := remote.Plan(ctx, Request{Demand: d}); err != nil {
		t.Fatal(err)
	}
	id := remote.SessionID()
	if id == "" {
		t.Fatal("no session ID after a successful Plan")
	}
	sessions, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].ID != id {
		t.Fatalf("sessions = %+v, want one with ID %q", sessions, id)
	}

	// Two planners over byte-identical topologies share one daemon
	// session — and its replay cache.
	other := c.Planner(DGX1())
	defer other.Close()
	op, err := other.Plan(ctx, Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if other.SessionID() != id {
		t.Fatalf("identical topology got session %q, want shared %q", other.SessionID(), id)
	}
	if !op.CacheHit {
		t.Fatal("shared-session repeat was not replayed")
	}

	// Close drops the daemon session; the closed handle refuses work
	// and the sibling transparently reopens on its next Plan.
	if err := remote.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := remote.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if _, err := remote.Plan(ctx, Request{Demand: d}); !errors.Is(err, ErrPlannerClosed) {
		t.Fatalf("Plan after Close: %v, want ErrPlannerClosed", err)
	}
	if _, err := other.Plan(ctx, Request{Demand: d.Clone()}); err != nil {
		t.Fatalf("sibling did not survive session eviction: %v", err)
	}
	if other.SessionID() == "" {
		t.Fatal("sibling has no session after reopening")
	}
}
