package teccl

// planner.go is the session-oriented entry point: a long-lived Planner
// per topology answering a stream of solve requests with cached
// per-topology state (tau derivations, epoch estimates, schedule replay
// for structurally identical models, warm-start bases keyed by problem
// fingerprint and chained by variable name), context-aware cancellation
// through all three solvers, pluggable solver-selection policy, and a
// progress hook for serving-side observability. The stateless free
// functions in teccl.go are thin wrappers over single-use sessions.

import (
	"context"

	"teccl/internal/core"
	"teccl/internal/topo"
)

// Planner is a long-lived solving session pinned to one topology: it
// caches per-topology derived state across requests (epoch estimates,
// tau derivations, solved-schedule replay, warm-start bases), so a
// request stream over one topology gets progressively cheaper. Methods
// are safe for concurrent use; the topology must not be mutated while
// the session is alive.
type Planner = core.Planner

// PlannerOptions configures a session: default solve options, the
// solver-selection policy, and the replanning budget (Replan field).
type PlannerOptions = core.PlannerOptions

// ReplanOptions tunes Replan's bounded-regret budget (the pivot or
// wall-clock cap on every incremental attempt, derived from observed
// cold-solve cost) and the adaptive re-basing trigger. The zero value
// means sensible defaults; negative fields disable a mechanism.
type ReplanOptions = core.ReplanOptions

// Request is one unit of work for a Planner: a demand plus optional
// per-request options, a forced solver, and a progress hook.
type Request = core.Request

// Plan is a solved request: the Result plus provenance — which solver
// ran, whether the schedule was replayed from a structurally identical
// earlier request (CacheHit), and whether the simplex resumed from an
// earlier request's basis (WarmStart).
type Plan = core.Plan

// PlannerStats are a session's cumulative reuse counters.
type PlannerStats = core.PlannerStats

// Policy chooses the formulation for each request; see DefaultPolicy,
// CostModelPolicy, and the Force* singletons.
type Policy = core.Policy

// PolicyInput is what a Policy sees when choosing a solver.
type PolicyInput = core.PolicyInput

// DefaultPolicy is the historical Solve auto-pick: LP when copy cannot
// help, the MILP below its GPU/demand thresholds, A* beyond.
type DefaultPolicy = core.DefaultPolicy

// CostModelPolicy routes by estimated MILP model size (demands × links ×
// cached epoch estimate) instead of fixed thresholds.
type CostModelPolicy = core.CostModelPolicy

// Solver identifies a formulation in Request.Solver and Plan.Solver.
type Solver = core.Solver

// Solver identifiers.
const (
	SolverAuto    = core.SolverAuto
	SolverLP      = core.SolverLP
	SolverMILP    = core.SolverMILP
	SolverAStar   = core.SolverAStar
	SolverHorizon = core.SolverHorizon
)

// Force policies pin one formulation for every request of a session.
var (
	ForceLP      = core.ForceLP
	ForceMILP    = core.ForceMILP
	ForceAStar   = core.ForceAStar
	ForceHorizon = core.ForceHorizon
)

// Delta describes one step of churn for Planner.Replan: links or nodes
// lost, per-link bandwidth/latency scaling (degradation, stragglers,
// restoration), structural growth (AddNodes/AddLinks — a scale-up
// joining the job), and demand pairs added or dropped. Topology edits
// are applied immutably to the session's snapshot; the caller's
// Topology is never touched.
type Delta = core.Delta

// Node is one node of a Topology, for Delta.AddNodes.
type Node = topo.Node

// Link is one directed link of a Topology, for Delta.AddLinks.
type Link = topo.Link

// DemandPair names one (source, destination) demand pair in
// Delta.DropPairs.
type DemandPair = core.DemandPair

// LinkScale is one multiplicative link edit of a Delta: scale a link's
// capacity (degradation) and/or its α (straggler slowdown). Zero-valued
// fields mean "leave unchanged".
type LinkScale = topo.LinkScale

// Progress is one observability sample from a running solve; see
// Options.Progress and Request.Progress.
type Progress = core.Progress

// ProgressFunc receives Progress samples during a solve.
type ProgressFunc = core.ProgressFunc

// NewPlanner opens a solving session on a topology.
//
//	planner := teccl.NewPlanner(t, teccl.PlannerOptions{})
//	plan, err := planner.Plan(ctx, teccl.Request{Demand: demand})
//
// Plan honors ctx end to end — the simplex iteration loops, the
// branch-and-bound worker pool, and the A* round loop all watch it —
// and Options.TimeLimit is enforced through the same mechanism, so all
// three solvers respect the budget uniformly.
//
// The session snapshots the topology (Topology.Clone), so the caller
// may keep mutating its own value afterwards without corrupting cached
// derived state.
//
// # Replanning under churn
//
// A live session absorbs topology and demand churn with Replan:
//
//	plan, err := planner.Replan(ctx, teccl.Delta{
//		LinksDown: []teccl.LinkID{7},                                  // link failure
//		Scale:     []teccl.LinkScale{{Link: 3, Capacity: 0.5}},        // degradation
//	})
//
// Replan re-solves the session's last successful request against the
// churned topology, incrementally when the incumbent's form allows:
//
//   - LP incumbents absorb link failures, capacity scaling in either
//     direction, straggler restoration, and dropped demand pairs as
//     bound and right-hand-side edits to the incumbent model; the dual
//     simplex reoptimizes from the incumbent basis in a handful of
//     pivots instead of solving cold. Delta.AddDemand — including new
//     (source, destination) pairs and entirely new sources — is
//     absorbed by appending priced-out columns and rows to the
//     incumbent model and padding the basis, provided the addition
//     keeps the time discretization intact.
//   - MILP incumbents re-root branch-and-bound from the repaired root
//     relaxation basis, and the pre-churn integer incumbent is
//     re-validated against the churned topology: when it survives, it
//     seeds the search as a feasible incumbent, so even a
//     budget-truncated re-solve returns a valid schedule.
//   - A* incumbents replay the rounds untouched by the churn and
//     re-solve only from the first round that routed over a failed or
//     degraded link; a pure capacity increase replays the whole
//     schedule with no solver work at all.
//
// Churn that changes the model's shape — a scale that changes a link's
// per-chunk epochs, topology growth (Delta.AddNodes/AddLinks), or
// demand churn the incumbent form cannot absorb — degrades gracefully
// to a cold crash-started solve (Plan.ReplanFallback). Incremental
// attempts run under a bounded-regret budget derived from an EWMA of
// observed cold-solve cost (pivots for the LP, wall clock for MILP and
// A*; see ReplanOptions), so one replan never costs more than a small
// multiple of solving cold; a budget abort falls back the same way.
// When the per-replan pivot cost drifts upward across a long churn
// stream, the session proactively re-bases — refactorizes and re-crash
// starts (Plan.ReBased, PlannerStats.ReBases) — to restore the
// incremental advantage. Every replanned schedule is re-validated
// against the churned topology before being returned, and all session
// caches are invalidated atomically, so no pre-churn schedule or basis
// can leak into post-churn requests.
func NewPlanner(t *Topology, opt PlannerOptions) *Planner {
	return core.NewPlanner(t, opt)
}

// solveVia routes one stateless solve through a single-use session —
// the free functions' implementation since the Planner redesign.
func solveVia(t *Topology, d *Demand, opt Options, s Solver) (*Result, error) {
	plan, err := NewPlanner(t, PlannerOptions{Defaults: opt}).
		Plan(context.Background(), Request{Demand: d, Solver: s})
	if plan == nil {
		return nil, err
	}
	return plan.Result, err
}
