package teccl

// client.go re-exports the teccld Go client (package teccl/client), so
// dialing a planner daemon is symmetric with opening a local session:
//
//	var p teccl.PlannerAPI
//	if remote {
//		c, _ := teccl.Dial("http://planner:7447", teccl.ClientOptions{})
//		p = c.Planner(topology)
//	} else {
//		p = teccl.NewPlanner(topology, teccl.PlannerOptions{})
//	}
//	plan, err := p.Plan(ctx, teccl.Request{Demand: demand})

import (
	"context"

	"teccl/client"
	"teccl/internal/core"
)

// PlannerAPI is the planning surface shared by the in-process *Planner
// and the wire-backed *RemotePlanner. Code written against it runs
// unchanged over either.
type PlannerAPI interface {
	Plan(ctx context.Context, req Request) (*Plan, error)
	Replan(ctx context.Context, d Delta) (*Plan, error)
	Stats() PlannerStats
	Topology() *Topology
	Close() error
}

var (
	_ PlannerAPI = (*Planner)(nil)
	_ PlannerAPI = (*RemotePlanner)(nil)
)

// ErrPlannerClosed is returned by Plan and Replan on a closed session,
// local or remote.
var ErrPlannerClosed = core.ErrPlannerClosed

// Client speaks the v1 wire API to one teccld daemon; see Dial.
type Client = client.Client

// ClientOptions configures Dial.
type ClientOptions = client.ClientOptions

// RemotePlanner is a planning session backed by a teccld daemon,
// mirroring *Planner (see PlannerAPI). The daemon session is created
// lazily on the first Plan; topologies with equal fingerprints share
// one daemon session and its caches.
type RemotePlanner = client.RemotePlanner

// Dial creates a client for the daemon at baseURL (e.g.
// "http://localhost:7447"). No connection is made until the first call.
func Dial(baseURL string, opts ClientOptions) (*Client, error) {
	return client.Dial(baseURL, opts)
}
