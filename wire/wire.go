// Package wire defines the versioned JSON wire schema (v1) of the
// teccld planning service: the request, plan, delta, and stats types
// that cross the HTTP boundary between a teccld daemon and its clients.
//
// The schema is a deliberate contract, shared by the daemon
// (cmd/teccld), the Go client (teccl.Dial / teccl.Client), and the CLI
// (cmd/teccl): every type carries explicit JSON tags, and the golden
// round-trip tests in this package pin those tags against accidental
// renames — a field rename here is an API break and must bump the
// version, not slip through a refactor.
//
// Wire types mirror the in-process types of the teccl package but stay
// independent of them: only serializable state crosses the wire
// (function-valued options like Progress and LinkCapacity do not; the
// multi-tenant Priority function is carried as explicitly sampled
// per-triple weights, see Options.Priority). Conversion helpers
// translate in both directions, validating ranges on the way in so a
// malformed request fails at decode time rather than inside a solver.
package wire

import (
	"fmt"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// Version is the wire-schema version this package implements. Responses
// echo it in their "api" field; clients reject a mismatch.
const Version = "v1"

// Want is one demanded triple: dst wants chunk of src.
type Want struct {
	Src   int `json:"src"`
	Chunk int `json:"chunk"`
	Dst   int `json:"dst"`
}

// Demand is the wire form of a collective demand matrix: dimensions,
// chunk size, and the demanded (src, chunk, dst) triples.
type Demand struct {
	NumNodes   int     `json:"num_nodes"`
	NumChunks  int     `json:"num_chunks"`
	ChunkBytes float64 `json:"chunk_bytes"`
	Wants      []Want  `json:"wants"`
}

// FromDemand converts an in-process demand to its wire form.
func FromDemand(d *collective.Demand) Demand {
	out := Demand{
		NumNodes:   d.NumNodes(),
		NumChunks:  d.NumChunks(),
		ChunkBytes: d.ChunkBytes,
	}
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(src, c, dst) {
					out.Wants = append(out.Wants, Want{Src: src, Chunk: c, Dst: dst})
				}
			}
		}
	}
	return out
}

// ToDemand converts a wire demand back to the in-process form,
// validating dimensions and every triple.
func (d Demand) ToDemand() (*collective.Demand, error) {
	if d.NumNodes <= 0 || d.NumChunks <= 0 {
		return nil, fmt.Errorf("wire: bad demand dimensions %d nodes, %d chunks", d.NumNodes, d.NumChunks)
	}
	if d.ChunkBytes <= 0 {
		return nil, fmt.Errorf("wire: bad demand chunk size %g", d.ChunkBytes)
	}
	out := collective.New(d.NumNodes, d.NumChunks, d.ChunkBytes)
	for _, w := range d.Wants {
		if w.Src < 0 || w.Src >= d.NumNodes || w.Dst < 0 || w.Dst >= d.NumNodes ||
			w.Chunk < 0 || w.Chunk >= d.NumChunks {
			return nil, fmt.Errorf("wire: demand triple (%d,%d,%d) out of range (%d nodes, %d chunks)",
				w.Src, w.Chunk, w.Dst, d.NumNodes, d.NumChunks)
		}
		if w.Src == w.Dst {
			continue // a node always has its own chunks
		}
		out.Set(w.Src, w.Chunk, w.Dst)
	}
	return out, nil
}

// PriorityWeight is one sampled multi-tenant priority weight: the
// delivery reward of the (src, chunk, dst) triple is scaled by Weight.
// Unlisted triples keep weight 1. The in-process Priority function is
// sampled over the request's demanded triples by the client, since a
// function value cannot cross the wire.
type PriorityWeight struct {
	Src    int     `json:"src"`
	Chunk  int     `json:"chunk"`
	Dst    int     `json:"dst"`
	Weight float64 `json:"weight"`
}

// Options is the serializable subset of the solve options. Zero values
// mean the paper's defaults, exactly as in the in-process Options.
// Function-valued options do not cross the wire: LinkCapacity is
// rejected by the client, Progress is daemon-side only (see /metrics),
// and Priority is carried as sampled per-triple weights.
type Options struct {
	Epochs            int              `json:"epochs,omitempty"`
	EpochMode         string           `json:"epoch_mode,omitempty"` // "", "fastest", "slowest"
	Tau               float64          `json:"tau,omitempty"`
	EpochMultiplier   float64          `json:"epoch_multiplier,omitempty"`
	SwitchMode        string           `json:"switch_mode,omitempty"` // "", "copy", "nocopy"
	NoBuffers         bool             `json:"no_buffers,omitempty"`
	BufferLimitChunks int              `json:"buffer_limit_chunks,omitempty"`
	GapLimit          float64          `json:"gap_limit,omitempty"`
	TimeLimitMs       int64            `json:"time_limit_ms,omitempty"`
	MinimizeMakespan  bool             `json:"minimize_makespan,omitempty"`
	Crash             string           `json:"crash,omitempty"` // "", "auto", "all", "off"
	Workers           int              `json:"workers,omitempty"`
	RoundEpochs       int              `json:"round_epochs,omitempty"`
	MaxRounds         int              `json:"max_rounds,omitempty"`
	Priority          []PriorityWeight `json:"priority,omitempty"`

	// Rolling-horizon fields (additive in v1; zero values defer to the
	// solver's auto-sizing, exactly as in the in-process Options).
	HorizonWindow       int   `json:"horizon_window,omitempty"`
	HorizonOverlap      int   `json:"horizon_overlap,omitempty"`
	HorizonCertifyMs    int64 `json:"horizon_certify_ms,omitempty"`
	AutoEpochMultiplier bool  `json:"auto_epoch_multiplier,omitempty"`
	HorizonCellBudget   int   `json:"horizon_cell_budget,omitempty"`
}

// FromOptions converts the serializable fields of in-process options to
// wire form. Priority/LinkCapacity/Progress functions are NOT carried
// (see SamplePriority for the priority path); the caller decides
// whether their presence is an error.
func FromOptions(o core.Options) Options {
	out := Options{
		Epochs:            o.Epochs,
		Tau:               o.Tau,
		EpochMultiplier:   o.EpochMultiplier,
		NoBuffers:         o.NoBuffers,
		BufferLimitChunks: o.BufferLimitChunks,
		GapLimit:          o.GapLimit,
		TimeLimitMs:       o.TimeLimit.Milliseconds(),
		MinimizeMakespan:  o.MinimizeMakespan,
		Workers:           o.Workers,
		RoundEpochs:       o.RoundEpochs,
		MaxRounds:         o.MaxRounds,

		HorizonWindow:       o.HorizonWindow,
		HorizonOverlap:      o.HorizonOverlap,
		HorizonCertifyMs:    o.HorizonCertify.Milliseconds(),
		AutoEpochMultiplier: o.AutoEpochMultiplier,
		HorizonCellBudget:   o.HorizonCellBudget,
	}
	if o.EpochMode == core.SlowestLink {
		out.EpochMode = "slowest"
	}
	if o.SwitchMode == core.SwitchNoCopy {
		out.SwitchMode = "nocopy"
	}
	switch o.Crash {
	case core.CrashAll:
		out.Crash = "all"
	case core.CrashOff:
		out.Crash = "off"
	}
	return out
}

// SamplePriority samples a priority function over the demanded triples,
// returning the non-neutral weights in wire form. Only demanded triples
// carry delivery rewards, so the sample is exact.
func SamplePriority(pri func(src, chunk, dst int) float64, d *collective.Demand) []PriorityWeight {
	if pri == nil || d == nil {
		return nil
	}
	var out []PriorityWeight
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(src, c, dst) {
					continue
				}
				if w := pri(src, c, dst); w != 1 {
					out = append(out, PriorityWeight{Src: src, Chunk: c, Dst: dst, Weight: w})
				}
			}
		}
	}
	return out
}

// ToOptions converts wire options to the in-process form, validating
// the enumerations and rebuilding the Priority function from the
// sampled weights.
func (o Options) ToOptions() (core.Options, error) {
	out := core.Options{
		Epochs:            o.Epochs,
		Tau:               o.Tau,
		EpochMultiplier:   o.EpochMultiplier,
		NoBuffers:         o.NoBuffers,
		BufferLimitChunks: o.BufferLimitChunks,
		GapLimit:          o.GapLimit,
		TimeLimit:         time.Duration(o.TimeLimitMs) * time.Millisecond,
		MinimizeMakespan:  o.MinimizeMakespan,
		Workers:           o.Workers,
		RoundEpochs:       o.RoundEpochs,
		MaxRounds:         o.MaxRounds,

		HorizonWindow:       o.HorizonWindow,
		HorizonOverlap:      o.HorizonOverlap,
		HorizonCertify:      time.Duration(o.HorizonCertifyMs) * time.Millisecond,
		AutoEpochMultiplier: o.AutoEpochMultiplier,
		HorizonCellBudget:   o.HorizonCellBudget,
	}
	switch o.EpochMode {
	case "", "fastest":
	case "slowest":
		out.EpochMode = core.SlowestLink
	default:
		return out, fmt.Errorf("wire: unknown epoch_mode %q", o.EpochMode)
	}
	switch o.SwitchMode {
	case "", "copy":
	case "nocopy":
		out.SwitchMode = core.SwitchNoCopy
	default:
		return out, fmt.Errorf("wire: unknown switch_mode %q", o.SwitchMode)
	}
	switch o.Crash {
	case "", "auto":
	case "all":
		out.Crash = core.CrashAll
	case "off":
		out.Crash = core.CrashOff
	default:
		return out, fmt.Errorf("wire: unknown crash mode %q", o.Crash)
	}
	if len(o.Priority) > 0 {
		weights := make(map[[3]int]float64, len(o.Priority))
		for _, p := range o.Priority {
			if p.Weight <= 0 {
				return out, fmt.Errorf("wire: non-positive priority weight %g for (%d,%d,%d)",
					p.Weight, p.Src, p.Chunk, p.Dst)
			}
			weights[[3]int{p.Src, p.Chunk, p.Dst}] = p.Weight
		}
		out.Priority = func(src, chunk, dst int) float64 {
			if w, ok := weights[[3]int{src, chunk, dst}]; ok {
				return w
			}
			return 1
		}
	}
	return out, nil
}

// ParseSolver maps a wire solver name to the in-process identifier.
func ParseSolver(s string) (core.Solver, error) {
	switch s {
	case "", "auto":
		return core.SolverAuto, nil
	case "lp":
		return core.SolverLP, nil
	case "milp":
		return core.SolverMILP, nil
	case "astar":
		return core.SolverAStar, nil
	case "horizon":
		return core.SolverHorizon, nil
	}
	return core.SolverAuto, fmt.Errorf("wire: unknown solver %q", s)
}

// SolverName maps an in-process solver identifier to its wire name.
func SolverName(s core.Solver) string { return s.String() }

// LinkScale is one multiplicative link edit of a delta; zero-valued
// multiplier fields mean "leave unchanged".
type LinkScale struct {
	Link     int     `json:"link"`
	Capacity float64 `json:"capacity,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
}

// Pair names one (source, destination) demand pair.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Delta is the wire form of one step of churn for /v1/replan.
type Delta struct {
	LinksDown []int       `json:"links_down,omitempty"`
	NodesDown []int       `json:"nodes_down,omitempty"`
	Scale     []LinkScale `json:"scale,omitempty"`
	AddNodes  []topo.Node `json:"add_nodes,omitempty"`
	AddLinks  []topo.Link `json:"add_links,omitempty"`
	DropPairs []Pair      `json:"drop_pairs,omitempty"`
	AddDemand *Demand     `json:"add_demand,omitempty"`
}

// FromDelta converts an in-process replan delta to wire form.
func FromDelta(d core.Delta) Delta {
	out := Delta{
		AddNodes: d.AddNodes,
		AddLinks: d.AddLinks,
	}
	for _, l := range d.LinksDown {
		out.LinksDown = append(out.LinksDown, int(l))
	}
	for _, n := range d.NodesDown {
		out.NodesDown = append(out.NodesDown, int(n))
	}
	for _, s := range d.Scale {
		out.Scale = append(out.Scale, LinkScale{Link: int(s.Link), Capacity: s.Capacity, Alpha: s.Alpha})
	}
	for _, p := range d.DropPairs {
		out.DropPairs = append(out.DropPairs, Pair{Src: p.Src, Dst: p.Dst})
	}
	if d.AddDemand != nil {
		ad := FromDemand(d.AddDemand)
		out.AddDemand = &ad
	}
	return out
}

// ToDelta converts a wire delta to the in-process form. ID range
// checking is left to Planner.Replan, which validates against the live
// session topology.
func (d Delta) ToDelta() (core.Delta, error) {
	out := core.Delta{
		AddNodes: d.AddNodes,
		AddLinks: d.AddLinks,
	}
	for _, l := range d.LinksDown {
		out.LinksDown = append(out.LinksDown, topo.LinkID(l))
	}
	for _, n := range d.NodesDown {
		out.NodesDown = append(out.NodesDown, topo.NodeID(n))
	}
	for _, s := range d.Scale {
		out.Scale = append(out.Scale, topo.LinkScale{Link: topo.LinkID(s.Link), Capacity: s.Capacity, Alpha: s.Alpha})
	}
	for _, p := range d.DropPairs {
		out.DropPairs = append(out.DropPairs, core.DemandPair{Src: p.Src, Dst: p.Dst})
	}
	if d.AddDemand != nil {
		ad, err := d.AddDemand.ToDemand()
		if err != nil {
			return out, err
		}
		out.AddDemand = ad
	}
	return out, nil
}

// Send is one chunk transmission of a wire schedule.
type Send struct {
	Src      int     `json:"src"`
	Chunk    int     `json:"chunk"`
	Link     int     `json:"link"`
	Epoch    int     `json:"epoch"`
	Fraction float64 `json:"fraction"`
}

// Schedule is the wire form of an executable schedule. The topology and
// demand it binds to travel separately (the session's), so the schedule
// itself stays compact.
type Schedule struct {
	Tau            float64 `json:"tau"`
	NumEpochs      int     `json:"num_epochs"`
	AllowCopy      bool    `json:"allow_copy,omitempty"`
	EpochsPerChunk []int   `json:"epochs_per_chunk,omitempty"`
	Sends          []Send  `json:"sends"`
}

// FromSchedule converts an in-process schedule to wire form.
func FromSchedule(s *schedule.Schedule) *Schedule {
	if s == nil {
		return nil
	}
	out := &Schedule{
		Tau:            s.Tau,
		NumEpochs:      s.NumEpochs,
		AllowCopy:      s.AllowCopy,
		EpochsPerChunk: s.EpochsPerChunk,
		Sends:          make([]Send, len(s.Sends)),
	}
	for i, snd := range s.Sends {
		out.Sends[i] = Send{
			Src: snd.Src, Chunk: snd.Chunk, Link: int(snd.Link),
			Epoch: snd.Epoch, Fraction: snd.Fraction,
		}
	}
	return out
}

// ToSchedule rebinds a wire schedule to a topology and demand (the
// session's current snapshots, client side).
func (s *Schedule) ToSchedule(t *topo.Topology, d *collective.Demand) *schedule.Schedule {
	if s == nil {
		return nil
	}
	out := &schedule.Schedule{
		Topo: t, Demand: d,
		Tau:            s.Tau,
		NumEpochs:      s.NumEpochs,
		AllowCopy:      s.AllowCopy,
		EpochsPerChunk: s.EpochsPerChunk,
		Sends:          make([]schedule.Send, len(s.Sends)),
	}
	for i, snd := range s.Sends {
		out.Sends[i] = schedule.Send{
			Src: snd.Src, Chunk: snd.Chunk, Link: topo.LinkID(snd.Link),
			Epoch: snd.Epoch, Fraction: snd.Fraction,
		}
	}
	return out
}

// Plan is the wire form of a solved request: provenance, result
// metrics, solver-effort counters, and the schedule.
type Plan struct {
	Solver         string  `json:"solver"`
	Optimal        bool    `json:"optimal"`
	Gap            float64 `json:"gap"`
	Objective      float64 `json:"objective"`
	Epochs         int     `json:"epochs"`
	Tau            float64 `json:"tau"`
	Rounds         int     `json:"rounds,omitempty"`
	Windows        int     `json:"windows,omitempty"`
	SolveTimeMs    float64 `json:"solve_time_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	WarmStart      bool    `json:"warm_start,omitempty"`
	CrashStart     bool    `json:"crash_start,omitempty"`
	Replanned      bool    `json:"replanned,omitempty"`
	ReplanFallback bool    `json:"replan_fallback,omitempty"`
	ReBased        bool    `json:"rebased,omitempty"`

	Nodes            int `json:"nodes,omitempty"`
	RootIterations   int `json:"root_iterations,omitempty"`
	NodeIterations   int `json:"node_iterations,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	FTUpdates        int `json:"ft_updates,omitempty"`
	UpdateNnz        int `json:"update_nnz,omitempty"`

	Schedule *Schedule `json:"schedule,omitempty"`
}

// FromPlan converts an in-process plan to wire form.
func FromPlan(p *core.Plan) Plan {
	out := Plan{
		Solver:         SolverName(p.Solver),
		CacheHit:       p.CacheHit,
		WarmStart:      p.WarmStart,
		CrashStart:     p.CrashStart,
		Replanned:      p.Replanned,
		ReplanFallback: p.ReplanFallback,
		ReBased:        p.ReBased,
	}
	if p.Result != nil {
		out.Optimal = p.Optimal
		out.Gap = p.Gap
		out.Objective = p.Objective
		out.Epochs = p.Epochs
		out.Tau = p.Tau
		out.Rounds = p.Rounds
		out.Windows = p.Windows
		out.SolveTimeMs = float64(p.SolveTime) / float64(time.Millisecond)
		out.Nodes = p.Nodes
		out.RootIterations = p.RootIterations
		out.NodeIterations = p.NodeIterations
		out.Refactorizations = p.Refactorizations
		out.FTUpdates = p.FTUpdates
		out.UpdateNnz = p.UpdateNnz
		out.Schedule = FromSchedule(p.Schedule)
	}
	return out
}

// ToPlan converts a wire plan back to the in-process form, rebinding
// the schedule to the given topology and demand.
func (p Plan) ToPlan(t *topo.Topology, d *collective.Demand) (*core.Plan, error) {
	solver, err := ParseSolver(p.Solver)
	if err != nil {
		return nil, err
	}
	return &core.Plan{
		Result: &core.Result{
			Schedule:         p.Schedule.ToSchedule(t, d),
			Objective:        p.Objective,
			Gap:              p.Gap,
			Optimal:          p.Optimal,
			SolveTime:        time.Duration(p.SolveTimeMs * float64(time.Millisecond)),
			Epochs:           p.Epochs,
			Tau:              p.Tau,
			Rounds:           p.Rounds,
			Windows:          p.Windows,
			Nodes:            p.Nodes,
			RootIterations:   p.RootIterations,
			NodeIterations:   p.NodeIterations,
			Refactorizations: p.Refactorizations,
			FTUpdates:        p.FTUpdates,
			UpdateNnz:        p.UpdateNnz,
			Reused:           p.CacheHit,
			WarmStarted:      p.WarmStart,
			CrashStarted:     p.CrashStart,
		},
		Solver:         solver,
		CacheHit:       p.CacheHit,
		WarmStart:      p.WarmStart,
		CrashStart:     p.CrashStart,
		Replanned:      p.Replanned,
		ReplanFallback: p.ReplanFallback,
		ReBased:        p.ReBased,
	}, nil
}

// Stats is the wire form of a session's cumulative counters. The field
// set mirrors PlannerStats one for one; the golden test pins the tags.
type Stats struct {
	Requests                 int `json:"requests"`
	ScheduleReplays          int `json:"schedule_replays"`
	WarmStartHits            int `json:"warm_start_hits"`
	CrashStarts              int `json:"crash_starts"`
	ExactBasisHits           int `json:"exact_basis_hits"`
	TauCacheHits             int `json:"tau_cache_hits"`
	EpochCacheHits           int `json:"epoch_cache_hits"`
	Replans                  int `json:"replans"`
	ReplanPivots             int `json:"replan_pivots"`
	ReplanIncrementalPivots  int `json:"replan_incremental_pivots"`
	ColdEstimatePivots       int `json:"cold_estimate_pivots"`
	ReplanFallbacks          int `json:"replan_fallbacks"`
	ReplanFallbackStructural int `json:"replan_fallback_structural"`
	ReplanFallbackBudget     int `json:"replan_fallback_budget"`
	ReplanFallbackSour       int `json:"replan_fallback_sour"`
	ReplanFallbackNoModel    int `json:"replan_fallback_no_model"`
	ReBases                  int `json:"rebases"`
}

// FromStats converts in-process session counters to wire form.
func FromStats(s core.PlannerStats) Stats {
	return Stats{
		Requests:                 s.Requests,
		ScheduleReplays:          s.ScheduleReplays,
		WarmStartHits:            s.WarmStartHits,
		CrashStarts:              s.CrashStarts,
		ExactBasisHits:           s.ExactBasisHits,
		TauCacheHits:             s.TauCacheHits,
		EpochCacheHits:           s.EpochCacheHits,
		Replans:                  s.Replans,
		ReplanPivots:             s.ReplanPivots,
		ReplanIncrementalPivots:  s.ReplanIncrementalPivots,
		ColdEstimatePivots:       s.ColdEstimatePivots,
		ReplanFallbacks:          s.ReplanFallbacks,
		ReplanFallbackStructural: s.ReplanFallbackStructural,
		ReplanFallbackBudget:     s.ReplanFallbackBudget,
		ReplanFallbackSour:       s.ReplanFallbackSour,
		ReplanFallbackNoModel:    s.ReplanFallbackNoModel,
		ReBases:                  s.ReBases,
	}
}

// ToStats converts wire counters back to the in-process form.
func (s Stats) ToStats() core.PlannerStats {
	return core.PlannerStats{
		Requests:                 s.Requests,
		ScheduleReplays:          s.ScheduleReplays,
		WarmStartHits:            s.WarmStartHits,
		CrashStarts:              s.CrashStarts,
		ExactBasisHits:           s.ExactBasisHits,
		TauCacheHits:             s.TauCacheHits,
		EpochCacheHits:           s.EpochCacheHits,
		Replans:                  s.Replans,
		ReplanPivots:             s.ReplanPivots,
		ReplanIncrementalPivots:  s.ReplanIncrementalPivots,
		ColdEstimatePivots:       s.ColdEstimatePivots,
		ReplanFallbacks:          s.ReplanFallbacks,
		ReplanFallbackStructural: s.ReplanFallbackStructural,
		ReplanFallbackBudget:     s.ReplanFallbackBudget,
		ReplanFallbackSour:       s.ReplanFallbackSour,
		ReplanFallbackNoModel:    s.ReplanFallbackNoModel,
		ReBases:                  s.ReBases,
	}
}

// PlanRequest is the body of POST /v1/plan. Exactly one of Topology and
// SessionID identifies the session: a topology is fingerprinted and
// mapped to a (possibly new) session; a session ID reuses one directly.
type PlanRequest struct {
	Topology  *topo.Topology `json:"topology,omitempty"`
	SessionID string         `json:"session_id,omitempty"`
	Demand    Demand         `json:"demand"`
	Options   *Options       `json:"options,omitempty"`
	Solver    string         `json:"solver,omitempty"`
}

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	API       string `json:"api"`
	SessionID string `json:"session_id"`
	Plan      Plan   `json:"plan"`
}

// ReplanRequest is the body of POST /v1/replan: session-scoped churn.
type ReplanRequest struct {
	SessionID string `json:"session_id"`
	Delta     Delta  `json:"delta"`
}

// ReplanResponse is the body of a successful POST /v1/replan. It
// carries the session's post-churn topology and demand snapshots, so
// the client can rebind the returned schedule (and later ones) without
// replaying the delta locally.
type ReplanResponse struct {
	API       string         `json:"api"`
	SessionID string         `json:"session_id"`
	Plan      Plan           `json:"plan"`
	Topology  *topo.Topology `json:"topology,omitempty"`
	Demand    *Demand        `json:"demand,omitempty"`
}

// SessionInfo is one session of GET /v1/sessions.
type SessionInfo struct {
	ID          string `json:"id"`
	Topology    string `json:"topology"`
	Fingerprint string `json:"fingerprint"`
	NumNodes    int    `json:"num_nodes"`
	NumLinks    int    `json:"num_links"`
	CreatedMs   int64  `json:"created_unix_ms"`
	LastUsedMs  int64  `json:"last_used_unix_ms"`
	Requests    int64  `json:"requests"`
}

// SessionsResponse is the body of GET /v1/sessions.
type SessionsResponse struct {
	API      string        `json:"api"`
	Sessions []SessionInfo `json:"sessions"`
}

// StatsResponse is the body of GET /v1/sessions/{id}/stats.
type StatsResponse struct {
	API       string `json:"api"`
	SessionID string `json:"session_id"`
	Stats     Stats  `json:"stats"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
	Code  int    `json:"code,omitempty"`
}
