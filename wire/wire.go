// Package wire defines the versioned JSON wire schema (v1) of the
// teccld planning service: the request, plan, delta, and stats types
// that cross the HTTP boundary between a teccld daemon and its clients.
//
// The schema is a deliberate contract, shared by the daemon
// (cmd/teccld), the Go client (teccl.Dial / teccl.Client), and the CLI
// (cmd/teccl): every type carries explicit JSON tags, and two
// independent guards pin those tags against accidental renames — the
// golden round-trip tests in this package, and the tecclvet wirelock
// analyzer, which diffs every exported struct here against the
// committed schema.lock.json. A field rename or removal is an API break
// and must bump the version, not slip through a refactor; additive
// changes regenerate the lock (see the go:generate directive below).
//
// The package imports only the standard library (machine-enforced by
// the tecclvet importrules analyzer): wire types mirror the in-process
// types but stay independent of them, so the schema cannot drift when
// an internal type changes shape. Only serializable state crosses the
// wire (function-valued options like Progress and LinkCapacity do not;
// the multi-tenant Priority function is carried as explicitly sampled
// per-triple weights, see Options.Priority). The conversion helpers —
// which validate ranges on the way in so a malformed request fails at
// decode time rather than inside a solver — live in
// teccl/internal/wireconv.
package wire

//go:generate go run teccl/cmd/tecclvet -write-wire-lock

// Version is the wire-schema version this package implements. Responses
// echo it in their "api" field; clients reject a mismatch.
const Version = "v1"

// Want is one demanded triple: dst wants chunk of src.
type Want struct {
	Src   int `json:"src"`
	Chunk int `json:"chunk"`
	Dst   int `json:"dst"`
}

// Demand is the wire form of a collective demand matrix: dimensions,
// chunk size, and the demanded (src, chunk, dst) triples.
type Demand struct {
	NumNodes   int     `json:"num_nodes"`
	NumChunks  int     `json:"num_chunks"`
	ChunkBytes float64 `json:"chunk_bytes"`
	Wants      []Want  `json:"wants"`
}

// PriorityWeight is one sampled multi-tenant priority weight: the
// delivery reward of the (src, chunk, dst) triple is scaled by Weight.
// Unlisted triples keep weight 1. The in-process Priority function is
// sampled over the request's demanded triples by the client, since a
// function value cannot cross the wire.
type PriorityWeight struct {
	Src    int     `json:"src"`
	Chunk  int     `json:"chunk"`
	Dst    int     `json:"dst"`
	Weight float64 `json:"weight"`
}

// Options is the serializable subset of the solve options. Zero values
// mean the paper's defaults, exactly as in the in-process Options.
// Function-valued options do not cross the wire: LinkCapacity is
// rejected by the client, Progress is daemon-side only (see /metrics),
// and Priority is carried as sampled per-triple weights.
type Options struct {
	Epochs            int              `json:"epochs,omitempty"`
	EpochMode         string           `json:"epoch_mode,omitempty"` // "", "fastest", "slowest"
	Tau               float64          `json:"tau,omitempty"`
	EpochMultiplier   float64          `json:"epoch_multiplier,omitempty"`
	SwitchMode        string           `json:"switch_mode,omitempty"` // "", "copy", "nocopy"
	NoBuffers         bool             `json:"no_buffers,omitempty"`
	BufferLimitChunks int              `json:"buffer_limit_chunks,omitempty"`
	GapLimit          float64          `json:"gap_limit,omitempty"`
	TimeLimitMs       int64            `json:"time_limit_ms,omitempty"`
	MinimizeMakespan  bool             `json:"minimize_makespan,omitempty"`
	Crash             string           `json:"crash,omitempty"` // "", "auto", "all", "off"
	Workers           int              `json:"workers,omitempty"`
	RoundEpochs       int              `json:"round_epochs,omitempty"`
	MaxRounds         int              `json:"max_rounds,omitempty"`
	Priority          []PriorityWeight `json:"priority,omitempty"`

	// Rolling-horizon fields (additive in v1; zero values defer to the
	// solver's auto-sizing, exactly as in the in-process Options).
	HorizonWindow       int   `json:"horizon_window,omitempty"`
	HorizonOverlap      int   `json:"horizon_overlap,omitempty"`
	HorizonCertifyMs    int64 `json:"horizon_certify_ms,omitempty"`
	AutoEpochMultiplier bool  `json:"auto_epoch_multiplier,omitempty"`
	HorizonCellBudget   int   `json:"horizon_cell_budget,omitempty"`
}

// Node is the wire form of one topology node. It mirrors the JSON shape
// of the in-process topo.Node byte for byte; the wirelock lock and the
// golden tests pin both against drift.
type Node struct {
	Name   string `json:"name"`
	Switch bool   `json:"switch,omitempty"`
}

// Link is the wire form of one unidirectional link. Capacity is in
// bytes per second; Alpha is the fixed per-transfer latency in seconds.
// Src and Dst are node IDs: indices into the topology's node list.
type Link struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Capacity float64 `json:"capacity"`
	Alpha    float64 `json:"alpha"`
}

// Topology is the wire form of a full topology snapshot. Down lists the
// IDs of links taken down by churn; a down link keeps its ID and
// metadata so deltas and schedules stated against the original IDs stay
// meaningful.
type Topology struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
	Down  []int  `json:"down,omitempty"`
}

// LinkScale is one multiplicative link edit of a delta; zero-valued
// multiplier fields mean "leave unchanged".
type LinkScale struct {
	Link     int     `json:"link"`
	Capacity float64 `json:"capacity,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
}

// Pair names one (source, destination) demand pair.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Delta is the wire form of one step of churn for /v1/replan.
type Delta struct {
	LinksDown []int       `json:"links_down,omitempty"`
	NodesDown []int       `json:"nodes_down,omitempty"`
	Scale     []LinkScale `json:"scale,omitempty"`
	AddNodes  []Node      `json:"add_nodes,omitempty"`
	AddLinks  []Link      `json:"add_links,omitempty"`
	DropPairs []Pair      `json:"drop_pairs,omitempty"`
	AddDemand *Demand     `json:"add_demand,omitempty"`
}

// Send is one chunk transmission of a wire schedule.
type Send struct {
	Src      int     `json:"src"`
	Chunk    int     `json:"chunk"`
	Link     int     `json:"link"`
	Epoch    int     `json:"epoch"`
	Fraction float64 `json:"fraction"`
}

// Schedule is the wire form of an executable schedule. The topology and
// demand it binds to travel separately (the session's), so the schedule
// itself stays compact.
type Schedule struct {
	Tau            float64 `json:"tau"`
	NumEpochs      int     `json:"num_epochs"`
	AllowCopy      bool    `json:"allow_copy,omitempty"`
	EpochsPerChunk []int   `json:"epochs_per_chunk,omitempty"`
	Sends          []Send  `json:"sends"`
}

// Plan is the wire form of a solved request: provenance, result
// metrics, solver-effort counters, and the schedule.
type Plan struct {
	Solver         string  `json:"solver"`
	Optimal        bool    `json:"optimal"`
	Gap            float64 `json:"gap"`
	Objective      float64 `json:"objective"`
	Epochs         int     `json:"epochs"`
	Tau            float64 `json:"tau"`
	Rounds         int     `json:"rounds,omitempty"`
	Windows        int     `json:"windows,omitempty"`
	SolveTimeMs    float64 `json:"solve_time_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	WarmStart      bool    `json:"warm_start,omitempty"`
	CrashStart     bool    `json:"crash_start,omitempty"`
	Replanned      bool    `json:"replanned,omitempty"`
	ReplanFallback bool    `json:"replan_fallback,omitempty"`
	ReBased        bool    `json:"rebased,omitempty"`

	Nodes            int `json:"nodes,omitempty"`
	RootIterations   int `json:"root_iterations,omitempty"`
	NodeIterations   int `json:"node_iterations,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	FTUpdates        int `json:"ft_updates,omitempty"`
	UpdateNnz        int `json:"update_nnz,omitempty"`

	Schedule *Schedule `json:"schedule,omitempty"`
}

// Stats is the wire form of a session's cumulative counters. The field
// set mirrors PlannerStats one for one; the golden test pins the tags.
type Stats struct {
	Requests                 int `json:"requests"`
	ScheduleReplays          int `json:"schedule_replays"`
	WarmStartHits            int `json:"warm_start_hits"`
	CrashStarts              int `json:"crash_starts"`
	ExactBasisHits           int `json:"exact_basis_hits"`
	TauCacheHits             int `json:"tau_cache_hits"`
	EpochCacheHits           int `json:"epoch_cache_hits"`
	Replans                  int `json:"replans"`
	ReplanPivots             int `json:"replan_pivots"`
	ReplanIncrementalPivots  int `json:"replan_incremental_pivots"`
	ColdEstimatePivots       int `json:"cold_estimate_pivots"`
	ReplanFallbacks          int `json:"replan_fallbacks"`
	ReplanFallbackStructural int `json:"replan_fallback_structural"`
	ReplanFallbackBudget     int `json:"replan_fallback_budget"`
	ReplanFallbackSour       int `json:"replan_fallback_sour"`
	ReplanFallbackNoModel    int `json:"replan_fallback_no_model"`
	ReBases                  int `json:"rebases"`
}

// PlanRequest is the body of POST /v1/plan. Exactly one of Topology and
// SessionID identifies the session: a topology is fingerprinted and
// mapped to a (possibly new) session; a session ID reuses one directly.
type PlanRequest struct {
	Topology  *Topology `json:"topology,omitempty"`
	SessionID string    `json:"session_id,omitempty"`
	Demand    Demand    `json:"demand"`
	Options   *Options  `json:"options,omitempty"`
	Solver    string    `json:"solver,omitempty"`
}

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	API       string `json:"api"`
	SessionID string `json:"session_id"`
	Plan      Plan   `json:"plan"`
}

// ReplanRequest is the body of POST /v1/replan: session-scoped churn.
type ReplanRequest struct {
	SessionID string `json:"session_id"`
	Delta     Delta  `json:"delta"`
}

// ReplanResponse is the body of a successful POST /v1/replan. It
// carries the session's post-churn topology and demand snapshots, so
// the client can rebind the returned schedule (and later ones) without
// replaying the delta locally.
type ReplanResponse struct {
	API       string    `json:"api"`
	SessionID string    `json:"session_id"`
	Plan      Plan      `json:"plan"`
	Topology  *Topology `json:"topology,omitempty"`
	Demand    *Demand   `json:"demand,omitempty"`
}

// SessionInfo is one session of GET /v1/sessions.
type SessionInfo struct {
	ID          string `json:"id"`
	Topology    string `json:"topology"`
	Fingerprint string `json:"fingerprint"`
	NumNodes    int    `json:"num_nodes"`
	NumLinks    int    `json:"num_links"`
	CreatedMs   int64  `json:"created_unix_ms"`
	LastUsedMs  int64  `json:"last_used_unix_ms"`
	Requests    int64  `json:"requests"`
}

// SessionsResponse is the body of GET /v1/sessions.
type SessionsResponse struct {
	API      string        `json:"api"`
	Sessions []SessionInfo `json:"sessions"`
}

// StatsResponse is the body of GET /v1/sessions/{id}/stats.
type StatsResponse struct {
	API       string `json:"api"`
	SessionID string `json:"session_id"`
	Stats     Stats  `json:"stats"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
	Code  int    `json:"code,omitempty"`
}
