package wire

// Golden tests pin the v1 wire schema: the JSON below is the contract.
// If a test here fails because a field was renamed or dropped, that is
// an API break — revert the rename or bump the wire version, never
// update the golden to match. (The tecclvet wirelock analyzer enforces
// the same contract structurally against schema.lock.json.)
//
// This package is stdlib-only by machine-enforced rule, so these tests
// exercise pure serialization; the conversion round-trips against the
// in-process types live in internal/wireconv.

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// mustJSON marshals compactly and fails the test on error.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGoldenPlan(t *testing.T) {
	p := Plan{
		Solver: "milp", Optimal: true, Gap: 0.25, Objective: 12.5,
		Epochs: 7, Tau: 1e-6, Rounds: 2, Windows: 5, SolveTimeMs: 3.5,
		CacheHit: true, WarmStart: true, CrashStart: true,
		Replanned: true, ReplanFallback: true, ReBased: true,
		Nodes: 9, RootIterations: 40, NodeIterations: 11,
		Refactorizations: 3, FTUpdates: 17, UpdateNnz: 210,
		Schedule: &Schedule{
			Tau: 1e-6, NumEpochs: 8, AllowCopy: true, EpochsPerChunk: []int{1, 2},
			Sends: []Send{{Src: 0, Chunk: 1, Link: 2, Epoch: 3, Fraction: 0.5}},
		},
	}
	const golden = `{"solver":"milp","optimal":true,"gap":0.25,"objective":12.5,` +
		`"epochs":7,"tau":0.000001,"rounds":2,"windows":5,"solve_time_ms":3.5,` +
		`"cache_hit":true,"warm_start":true,"crash_start":true,` +
		`"replanned":true,"replan_fallback":true,"rebased":true,` +
		`"nodes":9,"root_iterations":40,"node_iterations":11,` +
		`"refactorizations":3,"ft_updates":17,"update_nnz":210,` +
		`"schedule":{"tau":0.000001,"num_epochs":8,"allow_copy":true,` +
		`"epochs_per_chunk":[1,2],` +
		`"sends":[{"src":0,"chunk":1,"link":2,"epoch":3,"fraction":0.5}]}}`
	if got := mustJSON(t, p); got != golden {
		t.Errorf("Plan JSON drifted from the v1 schema:\n got: %s\nwant: %s", got, golden)
	}
	var back Plan
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("Plan does not round-trip:\n got: %+v\nwant: %+v", back, p)
	}
}

func TestGoldenStats(t *testing.T) {
	s := Stats{
		Requests: 1, ScheduleReplays: 2, WarmStartHits: 3, CrashStarts: 4,
		ExactBasisHits: 5, TauCacheHits: 6, EpochCacheHits: 7, Replans: 8,
		ReplanPivots: 9, ReplanIncrementalPivots: 10, ColdEstimatePivots: 11,
		ReplanFallbacks: 12, ReplanFallbackStructural: 13,
		ReplanFallbackBudget: 14, ReplanFallbackSour: 15,
		ReplanFallbackNoModel: 16, ReBases: 17,
	}
	const golden = `{"requests":1,"schedule_replays":2,"warm_start_hits":3,` +
		`"crash_starts":4,"exact_basis_hits":5,"tau_cache_hits":6,` +
		`"epoch_cache_hits":7,"replans":8,"replan_pivots":9,` +
		`"replan_incremental_pivots":10,"cold_estimate_pivots":11,` +
		`"replan_fallbacks":12,"replan_fallback_structural":13,` +
		`"replan_fallback_budget":14,"replan_fallback_sour":15,` +
		`"replan_fallback_no_model":16,"rebases":17}`
	if got := mustJSON(t, s); got != golden {
		t.Errorf("Stats JSON drifted from the v1 schema:\n got: %s\nwant: %s", got, golden)
	}
	var back Stats
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("Stats does not round-trip: %+v vs %+v", back, s)
	}
}

func TestGoldenPlanRequestAndDelta(t *testing.T) {
	req := PlanRequest{
		Topology: &Topology{
			Name:  "pair",
			Nodes: []Node{{Name: "a"}, {Name: "b"}},
			Links: []Link{{Src: 0, Dst: 1, Capacity: 1e9, Alpha: 1e-6}},
		},
		Demand: Demand{
			NumNodes: 2, NumChunks: 1, ChunkBytes: 1024,
			Wants: []Want{{Src: 0, Chunk: 0, Dst: 1}},
		},
		Options: &Options{Epochs: 4, EpochMode: "slowest", TimeLimitMs: 1500},
		Solver:  "lp",
	}
	const goldenReq = `{"topology":{"name":"pair",` +
		`"nodes":[{"name":"a"},{"name":"b"}],` +
		`"links":[{"src":0,"dst":1,"capacity":1000000000,"alpha":0.000001}]},` +
		`"demand":{"num_nodes":2,"num_chunks":1,"chunk_bytes":1024,` +
		`"wants":[{"src":0,"chunk":0,"dst":1}]},` +
		`"options":{"epochs":4,"epoch_mode":"slowest","time_limit_ms":1500},` +
		`"solver":"lp"}`
	if got := mustJSON(t, req); got != goldenReq {
		t.Errorf("PlanRequest JSON drifted:\n got: %s\nwant: %s", got, goldenReq)
	}

	delta := Delta{
		LinksDown: []int{0},
		NodesDown: []int{1},
		Scale:     []LinkScale{{Link: 2, Capacity: 0.5}},
		AddNodes:  []Node{{Name: "c", Switch: true}},
		AddLinks:  []Link{{Src: 0, Dst: 2, Capacity: 1e9, Alpha: 1e-6}},
		DropPairs: []Pair{{Src: 0, Dst: 1}},
	}
	const goldenDelta = `{"links_down":[0],"nodes_down":[1],` +
		`"scale":[{"link":2,"capacity":0.5}],` +
		`"add_nodes":[{"name":"c","switch":true}],` +
		`"add_links":[{"src":0,"dst":2,"capacity":1000000000,"alpha":0.000001}],` +
		`"drop_pairs":[{"src":0,"dst":1}]}`
	if got := mustJSON(t, ReplanRequest{SessionID: "s1", Delta: delta}); got !=
		`{"session_id":"s1","delta":`+goldenDelta+`}` {
		t.Errorf("ReplanRequest JSON drifted:\n got: %s", got)
	}
}

func TestGoldenEnvelopes(t *testing.T) {
	sessions := SessionsResponse{API: Version, Sessions: []SessionInfo{{
		ID: "s1", Topology: "dgx1", Fingerprint: "deadbeefdeadbeef",
		NumNodes: 8, NumLinks: 16, CreatedMs: 100, LastUsedMs: 200, Requests: 3,
	}}}
	const goldenSessions = `{"api":"v1","sessions":[{"id":"s1","topology":"dgx1",` +
		`"fingerprint":"deadbeefdeadbeef","num_nodes":8,"num_links":16,` +
		`"created_unix_ms":100,"last_used_unix_ms":200,"requests":3}]}`
	if got := mustJSON(t, sessions); got != goldenSessions {
		t.Errorf("SessionsResponse JSON drifted:\n got: %s\nwant: %s", got, goldenSessions)
	}
	if got := mustJSON(t, Error{Error: "queue full", Code: 429}); got != `{"error":"queue full","code":429}` {
		t.Errorf("Error JSON drifted: %s", got)
	}
	if got := mustJSON(t, StatsResponse{API: Version, SessionID: "s1"}); !strings.HasPrefix(got, `{"api":"v1","session_id":"s1","stats":{`) {
		t.Errorf("StatsResponse envelope drifted: %s", got)
	}
}

func TestGoldenTopologyWithChurn(t *testing.T) {
	// The Down list carries churn state; its presence is part of the v1
	// contract (the in-process topo.Topology marshals the same shape —
	// wireconv's round-trip test pins the two against each other).
	tt := Topology{
		Name:  "tri",
		Nodes: []Node{{Name: "a"}, {Name: "b"}, {Name: "sw", Switch: true}},
		Links: []Link{
			{Src: 0, Dst: 1, Capacity: 5e8, Alpha: 2e-6},
			{Src: 1, Dst: 2, Capacity: 5e8, Alpha: 2e-6},
		},
		Down: []int{1},
	}
	const golden = `{"name":"tri",` +
		`"nodes":[{"name":"a"},{"name":"b"},{"name":"sw","switch":true}],` +
		`"links":[{"src":0,"dst":1,"capacity":500000000,"alpha":0.000002},` +
		`{"src":1,"dst":2,"capacity":500000000,"alpha":0.000002}],` +
		`"down":[1]}`
	if got := mustJSON(t, tt); got != golden {
		t.Errorf("Topology JSON drifted:\n got: %s\nwant: %s", got, golden)
	}
	var back Topology
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tt) {
		t.Errorf("Topology does not round-trip:\n got: %+v\nwant: %+v", back, tt)
	}
}
