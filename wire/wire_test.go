package wire

// Golden tests pin the v1 wire schema: the JSON below is the contract.
// If a test here fails because a field was renamed or dropped, that is
// an API break — revert the rename or bump the wire version, never
// update the golden to match.

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// mustJSON marshals compactly and fails the test on error.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGoldenPlan(t *testing.T) {
	p := Plan{
		Solver: "milp", Optimal: true, Gap: 0.25, Objective: 12.5,
		Epochs: 7, Tau: 1e-6, Rounds: 2, Windows: 5, SolveTimeMs: 3.5,
		CacheHit: true, WarmStart: true, CrashStart: true,
		Replanned: true, ReplanFallback: true, ReBased: true,
		Nodes: 9, RootIterations: 40, NodeIterations: 11,
		Refactorizations: 3, FTUpdates: 17, UpdateNnz: 210,
		Schedule: &Schedule{
			Tau: 1e-6, NumEpochs: 8, AllowCopy: true, EpochsPerChunk: []int{1, 2},
			Sends: []Send{{Src: 0, Chunk: 1, Link: 2, Epoch: 3, Fraction: 0.5}},
		},
	}
	const golden = `{"solver":"milp","optimal":true,"gap":0.25,"objective":12.5,` +
		`"epochs":7,"tau":0.000001,"rounds":2,"windows":5,"solve_time_ms":3.5,` +
		`"cache_hit":true,"warm_start":true,"crash_start":true,` +
		`"replanned":true,"replan_fallback":true,"rebased":true,` +
		`"nodes":9,"root_iterations":40,"node_iterations":11,` +
		`"refactorizations":3,"ft_updates":17,"update_nnz":210,` +
		`"schedule":{"tau":0.000001,"num_epochs":8,"allow_copy":true,` +
		`"epochs_per_chunk":[1,2],` +
		`"sends":[{"src":0,"chunk":1,"link":2,"epoch":3,"fraction":0.5}]}}`
	if got := mustJSON(t, p); got != golden {
		t.Errorf("Plan JSON drifted from the v1 schema:\n got: %s\nwant: %s", got, golden)
	}
	var back Plan
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("Plan does not round-trip:\n got: %+v\nwant: %+v", back, p)
	}
}

func TestGoldenStats(t *testing.T) {
	s := Stats{
		Requests: 1, ScheduleReplays: 2, WarmStartHits: 3, CrashStarts: 4,
		ExactBasisHits: 5, TauCacheHits: 6, EpochCacheHits: 7, Replans: 8,
		ReplanPivots: 9, ReplanIncrementalPivots: 10, ColdEstimatePivots: 11,
		ReplanFallbacks: 12, ReplanFallbackStructural: 13,
		ReplanFallbackBudget: 14, ReplanFallbackSour: 15,
		ReplanFallbackNoModel: 16, ReBases: 17,
	}
	const golden = `{"requests":1,"schedule_replays":2,"warm_start_hits":3,` +
		`"crash_starts":4,"exact_basis_hits":5,"tau_cache_hits":6,` +
		`"epoch_cache_hits":7,"replans":8,"replan_pivots":9,` +
		`"replan_incremental_pivots":10,"cold_estimate_pivots":11,` +
		`"replan_fallbacks":12,"replan_fallback_structural":13,` +
		`"replan_fallback_budget":14,"replan_fallback_sour":15,` +
		`"replan_fallback_no_model":16,"rebases":17}`
	if got := mustJSON(t, s); got != golden {
		t.Errorf("Stats JSON drifted from the v1 schema:\n got: %s\nwant: %s", got, golden)
	}
	var back Stats
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("Stats does not round-trip: %+v vs %+v", back, s)
	}
}

func TestStatsMirrorsPlannerStats(t *testing.T) {
	// wire.Stats must track PlannerStats field for field: a counter
	// added in core without a wire mapping would silently read zero at
	// every client. Round-trip a struct filled with distinct values and
	// require every field to survive.
	var ps core.PlannerStats
	v := reflect.ValueOf(&ps).Elem()
	if v.NumField() != reflect.TypeOf(Stats{}).NumField() {
		t.Fatalf("PlannerStats has %d fields, wire.Stats %d — extend the wire mapping (and the golden)",
			v.NumField(), reflect.TypeOf(Stats{}).NumField())
	}
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	if got := FromStats(ps).ToStats(); got != ps {
		t.Errorf("PlannerStats round-trip lost counters:\n got: %+v\nwant: %+v", got, ps)
	}
}

func TestGoldenPlanRequestAndDelta(t *testing.T) {
	tt := topo.New("pair")
	a := tt.AddNode("a", false)
	b := tt.AddNode("b", false)
	tt.AddLink(a, b, 1e9, 1e-6)

	d := collective.New(2, 1, 1024)
	d.Set(0, 0, 1)

	req := PlanRequest{
		Topology: tt,
		Demand:   FromDemand(d),
		Options:  &Options{Epochs: 4, EpochMode: "slowest", TimeLimitMs: 1500},
		Solver:   "lp",
	}
	const goldenReq = `{"topology":{"name":"pair",` +
		`"nodes":[{"name":"a"},{"name":"b"}],` +
		`"links":[{"src":0,"dst":1,"capacity":1000000000,"alpha":0.000001}]},` +
		`"demand":{"num_nodes":2,"num_chunks":1,"chunk_bytes":1024,` +
		`"wants":[{"src":0,"chunk":0,"dst":1}]},` +
		`"options":{"epochs":4,"epoch_mode":"slowest","time_limit_ms":1500},` +
		`"solver":"lp"}`
	if got := mustJSON(t, req); got != goldenReq {
		t.Errorf("PlanRequest JSON drifted:\n got: %s\nwant: %s", got, goldenReq)
	}

	delta := Delta{
		LinksDown: []int{0},
		NodesDown: []int{1},
		Scale:     []LinkScale{{Link: 2, Capacity: 0.5}},
		DropPairs: []Pair{{Src: 0, Dst: 1}},
	}
	const goldenDelta = `{"links_down":[0],"nodes_down":[1],` +
		`"scale":[{"link":2,"capacity":0.5}],"drop_pairs":[{"src":0,"dst":1}]}`
	if got := mustJSON(t, ReplanRequest{SessionID: "s1", Delta: delta}); got !=
		`{"session_id":"s1","delta":`+goldenDelta+`}` {
		t.Errorf("ReplanRequest JSON drifted:\n got: %s", got)
	}
}

func TestGoldenEnvelopes(t *testing.T) {
	sessions := SessionsResponse{API: Version, Sessions: []SessionInfo{{
		ID: "s1", Topology: "dgx1", Fingerprint: "deadbeefdeadbeef",
		NumNodes: 8, NumLinks: 16, CreatedMs: 100, LastUsedMs: 200, Requests: 3,
	}}}
	const goldenSessions = `{"api":"v1","sessions":[{"id":"s1","topology":"dgx1",` +
		`"fingerprint":"deadbeefdeadbeef","num_nodes":8,"num_links":16,` +
		`"created_unix_ms":100,"last_used_unix_ms":200,"requests":3}]}`
	if got := mustJSON(t, sessions); got != goldenSessions {
		t.Errorf("SessionsResponse JSON drifted:\n got: %s\nwant: %s", got, goldenSessions)
	}
	if got := mustJSON(t, Error{Error: "queue full", Code: 429}); got != `{"error":"queue full","code":429}` {
		t.Errorf("Error JSON drifted: %s", got)
	}
	if got := mustJSON(t, StatsResponse{API: Version, SessionID: "s1"}); !strings.HasPrefix(got, `{"api":"v1","session_id":"s1","stats":{`) {
		t.Errorf("StatsResponse envelope drifted: %s", got)
	}
}

func TestDemandRoundTrip(t *testing.T) {
	tt := topo.DGX1()
	var gpus []int
	for _, g := range tt.GPUs() {
		gpus = append(gpus, int(g))
	}
	d := collective.AllToAll(tt.NumNodes(), gpus, 2, 25e3)
	js := mustJSON(t, FromDemand(d))
	var w Demand
	if err := json.Unmarshal([]byte(js), &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.ToDemand()
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != d.Fingerprint() {
		t.Fatal("demand fingerprint changed across the wire")
	}
}

func TestDemandValidation(t *testing.T) {
	cases := []Demand{
		{NumNodes: 0, NumChunks: 1, ChunkBytes: 1},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 0},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []Want{{Src: 2, Chunk: 0, Dst: 0}}},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []Want{{Src: 0, Chunk: 1, Dst: 1}}},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []Want{{Src: 0, Chunk: 0, Dst: -1}}},
	}
	for i, c := range cases {
		if _, err := c.ToDemand(); err == nil {
			t.Errorf("case %d: invalid demand accepted", i)
		}
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	in := core.Options{
		Epochs: 5, EpochMode: core.SlowestLink, Tau: 2e-6, EpochMultiplier: 2,
		SwitchMode: core.SwitchNoCopy, NoBuffers: true, BufferLimitChunks: 3,
		GapLimit: 0.3, TimeLimit: 90 * time.Second, MinimizeMakespan: true,
		Crash: core.CrashAll, Workers: 4, RoundEpochs: 6, MaxRounds: 12,
		HorizonWindow: 16, HorizonOverlap: 12, HorizonCertify: 30 * time.Second,
		AutoEpochMultiplier: true, HorizonCellBudget: 50_000,
	}
	w := FromOptions(in)
	js := mustJSON(t, w)
	var back Options
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatal(err)
	}
	out, err := back.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	// Function fields do not travel; compare the serializable rest.
	in.Priority, out.Priority = nil, nil
	if !reflect.DeepEqual(in, out) {
		t.Errorf("options round-trip:\n got: %+v\nwant: %+v", out, in)
	}

	for _, bad := range []Options{
		{EpochMode: "medium"}, {SwitchMode: "maybe"}, {Crash: "sometimes"},
		{Priority: []PriorityWeight{{Weight: 0}}},
	} {
		if _, err := bad.ToOptions(); err == nil {
			t.Errorf("invalid options %+v accepted", bad)
		}
	}
}

func TestParseSolverNames(t *testing.T) {
	for name, want := range map[string]core.Solver{
		"": core.SolverAuto, "auto": core.SolverAuto, "lp": core.SolverLP,
		"milp": core.SolverMILP, "astar": core.SolverAStar, "horizon": core.SolverHorizon,
	} {
		got, err := ParseSolver(name)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", name, got, err, want)
		}
		if rt, err := ParseSolver(SolverName(want)); err != nil || rt != want {
			t.Errorf("solver %v does not round-trip through its wire name %q", want, SolverName(want))
		}
	}
	if _, err := ParseSolver("simplex"); err == nil {
		t.Error("unknown solver name accepted")
	}
}

func TestPrioritySampling(t *testing.T) {
	d := collective.New(3, 1, 1024)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	pri := func(src, chunk, dst int) float64 {
		if dst == 2 {
			return 10
		}
		return 1
	}
	sampled := SamplePriority(pri, d)
	if len(sampled) != 1 || sampled[0] != (PriorityWeight{Src: 0, Chunk: 0, Dst: 2, Weight: 10}) {
		t.Fatalf("sampled = %+v, want the single non-neutral triple", sampled)
	}
	opt, err := Options{Priority: sampled}.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Priority(0, 0, 2) != 10 || opt.Priority(0, 0, 1) != 1 {
		t.Fatal("rebuilt priority function does not match the sample")
	}
}

func TestPlanRoundTripThroughCore(t *testing.T) {
	tt := topo.DGX1()
	var gpus []int
	for _, g := range tt.GPUs() {
		gpus = append(gpus, int(g))
	}
	d := collective.AllToAll(tt.NumNodes(), gpus, 1, 25e3)
	pl := core.NewPlanner(tt, core.PlannerOptions{})
	defer pl.Close()
	plan, err := pl.Plan(t.Context(), core.Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	js := mustJSON(t, FromPlan(plan))
	var w Plan
	if err := json.Unmarshal([]byte(js), &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.ToPlan(tt, d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Objective != plan.Objective || back.Solver != plan.Solver ||
		back.Optimal != plan.Optimal || back.Epochs != plan.Epochs {
		t.Fatalf("plan round-trip drifted: %+v vs %+v", back.Result, plan.Result)
	}
	if err := back.Schedule.Validate(); err != nil {
		t.Fatalf("rebound schedule invalid: %v", err)
	}
	if back.Schedule.FinishEpoch() != plan.Schedule.FinishEpoch() {
		t.Fatalf("finish epoch %d != %d", back.Schedule.FinishEpoch(), plan.Schedule.FinishEpoch())
	}
}
