module teccl

go 1.24
