package teccl

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6). Each benchmark regenerates its artifact through
// internal/experiments and reports the paper's metric of interest as a
// custom benchmark metric. Run a single one with e.g.
//
//	go test -bench=BenchmarkFig4 -benchtime=1x
//
// The same tables print from cmd/benchtables. Scale substitutions are
// documented in DESIGN.md; paper-vs-measured numbers in EXPERIMENTS.md.
// All benches run their experiment in -short form once per b.N iteration;
// they are wall-clock heavy (seconds to minutes), so -benchtime=1x is the
// intended invocation and is what the committed bench_output.txt used.

import (
	"testing"

	"teccl/internal/experiments"
)

// benchTable runs one experiment per iteration and logs the rows once.
func benchTable(b *testing.B, id string) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = experiments.ByID(id, true)
	}
	if last == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.StopTimer()
	b.Log("\n" + last.String())
}

// BenchmarkFig2AlphaError regenerates Figure 2: the relative error of the
// α-blind algorithmic-bandwidth estimate versus transfer size.
func BenchmarkFig2AlphaError(b *testing.B) { benchTable(b, "fig2") }

// BenchmarkTable3SCCL regenerates Table 3: SCCL least-steps versus TE-CCL
// transfer time on DGX1 (TE-CCL pipelines α; SCCL pays a barrier).
func BenchmarkTable3SCCL(b *testing.B) { benchTable(b, "table3") }

// BenchmarkFig4AlgoBandwidth regenerates Figures 4 and 5: algorithmic
// bandwidth and solver time against the TACCL-like baseline across
// topologies, demands, and buffer sizes.
func BenchmarkFig4AlgoBandwidth(b *testing.B) { benchTable(b, "fig4and5") }

// BenchmarkFig5SolverTime is an alias kept so every paper figure has a
// named bench target; Figures 4 and 5 share one sweep.
func BenchmarkFig5SolverTime(b *testing.B) { benchTable(b, "fig4and5") }

// BenchmarkFig6Internal2AtoA regenerates Figure 6: the Internal-2
// ALLTOALL chassis sweep against TACCL.
func BenchmarkFig6Internal2AtoA(b *testing.B) { benchTable(b, "fig6") }

// BenchmarkTable4Scale regenerates Table 4: solver times on the largest
// topologies the substrate reaches (A* for ALLGATHER, LP for ALLTOALL).
func BenchmarkTable4Scale(b *testing.B) { benchTable(b, "table4") }

// BenchmarkFig7Copy regenerates Figure 7: the benefit of in-network copy
// (general MILP) over no-copy (LP) ALLGATHER across transfer sizes.
func BenchmarkFig7Copy(b *testing.B) { benchTable(b, "fig7") }

// BenchmarkFig8Epochs regenerates Figure 8: small (fastest-link) versus
// large (slowest-link) epoch durations.
func BenchmarkFig8Epochs(b *testing.B) { benchTable(b, "fig8") }

// BenchmarkFig9Buffers regenerates Figure 9: store-and-forward buffers
// affect solver time, not solution quality.
func BenchmarkFig9Buffers(b *testing.B) { benchTable(b, "fig9") }

// BenchmarkAStarVsOpt regenerates the §6.3 A*-versus-optimal
// microbenchmark.
func BenchmarkAStarVsOpt(b *testing.B) { benchTable(b, "astar") }

// BenchmarkTable7SCCLInstance regenerates Table 7: SCCL instance-mode
// solver times versus TE-CCL with α = 0.
func BenchmarkTable7SCCLInstance(b *testing.B) { benchTable(b, "table7") }

// BenchmarkTable8NDv2 regenerates Table 8: the full NDv2-2-chassis metric
// table (epoch duration, finish time, solver time, algorithmic bandwidth)
// against TACCL.
func BenchmarkTable8NDv2(b *testing.B) { benchTable(b, "table8") }

// ---- micro-benchmarks of the substrates ----

// BenchmarkSimplexTransport measures the LP solver on a mid-size
// transportation problem (the inner loop of everything above), reporting
// simplex iterations and basis refactorizations alongside wall clock.
func BenchmarkSimplexTransport(b *testing.B) {
	var iters, refactors, ftUpdates int
	for i := 0; i < b.N; i++ {
		sol := benchSimplexOnce(b)
		iters += sol.Iterations
		refactors += sol.Refactorizations
		ftUpdates += sol.FTUpdates
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	b.ReportMetric(float64(refactors)/float64(b.N), "refactors/op")
	b.ReportMetric(float64(ftUpdates)/float64(b.N), "ft-updates/op")
}

// BenchmarkMILPDGX1AllGather measures one end-to-end optimal MILP solve
// on the DGX1 ALLGATHER (Table 3's headline instance). The extra metrics
// expose the branch-and-bound warm-start behavior: node iterations per op
// should sit far below root iterations per op.
func BenchmarkMILPDGX1AllGather(b *testing.B) {
	t := DGX1()
	d := AllGather(t, 1, 25e3)
	var rootIters, nodeIters, nodes int
	for i := 0; i < b.N; i++ {
		res, err := SolveMILP(t, d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rootIters += res.RootIterations
		nodeIters += res.NodeIterations
		nodes += res.Nodes
	}
	b.ReportMetric(float64(rootIters)/float64(b.N), "root-iters/op")
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	if nodes > 0 {
		b.ReportMetric(float64(nodeIters)/float64(nodes), "iters/node")
	}
}

// BenchmarkLPDGX1AllToAll measures one end-to-end LP solve on the DGX1
// ALLTOALL — 56 per-pair chunks, the ≥32-chunk LP microbenchmark used as
// the scoreboard for the sparse-basis work.
func BenchmarkLPDGX1AllToAll(b *testing.B) {
	t := DGX1()
	d := AllToAll(t, 1, 25e3)
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := SolveLP(t, d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		iters += res.RootIterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// BenchmarkNDv2AllToAll measures the NDv2 2-chassis ALLTOALL LP — the
// multi-minute time-expanded instance (≈79k vars, ≈19k rows at K=70)
// whose switch-serialized, massively degenerate structure motivated the
// dual-simplex/presolve/anti-stall work. The PR 1 primal-only solver
// never finished it: the auto horizon undershot (no relay serialization
// term) and even at a pinned feasible horizon phase 2 walked a
// degenerate plateau past a 20-minute budget. Skipped under -short; run
// with -benchtime=1x.
func BenchmarkNDv2AllToAll(b *testing.B) {
	if testing.Short() {
		b.Skip("minutes-scale LP; skipped in -short")
	}
	t := NDv2(2)
	gpus := len(t.GPUs())
	d := AllToAll(t, 1, 1e6/float64(gpus))
	var iters, refactors, ftUpdates int
	for i := 0; i < b.N; i++ {
		res, err := SolveLP(t, d, Options{EpochMode: SlowestLink})
		if err != nil {
			b.Fatal(err)
		}
		iters += res.RootIterations
		refactors += res.Refactorizations
		ftUpdates += res.FTUpdates
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	b.ReportMetric(float64(refactors)/float64(b.N), "refactors/op")
	b.ReportMetric(float64(ftUpdates)/float64(b.N), "ft-updates/op")
}

// BenchmarkLPInternal2AllToAll scales the LP microbenchmark to the
// Internal-2 4-chassis topology (Table 4's short-mode instance).
func BenchmarkLPInternal2AllToAll(b *testing.B) {
	t := Internal2(4)
	gpus := len(t.GPUs())
	d := AllToAll(t, 1, 16e6/float64(gpus))
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := SolveLP(t, d, Options{EpochMode: SlowestLink})
		if err != nil {
			b.Fatal(err)
		}
		iters += res.RootIterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// sweepSizes is the batched-vs-rebuilt sweep workload: an alpha-free
// DGX1 ALLTOALL size sweep in power-of-two steps, so the chunk-unit LPs
// coincide bit-for-bit and BatchSolveLP replays every point after the
// first (see internal/core/batch.go).
var sweepSizes = []float64{64e3, 256e3, 1024e3, 4096e3, 16384e3}

func sweepBenchDemands() (*Topology, []*Demand) {
	t := ZeroAlpha(DGX1())
	ds := make([]*Demand, len(sweepSizes))
	for i, size := range sweepSizes {
		ds[i] = AllToAll(t, 1, size/float64(len(t.GPUs())))
	}
	return t, ds
}

// BenchmarkSweepRebuilt solves the sweep the pre-batching way: every
// point rebuilds and re-solves the full time-expanded model.
func BenchmarkSweepRebuilt(b *testing.B) {
	t, ds := sweepBenchDemands()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			if _, err := SolveLP(t, d, Options{EpochMode: FastestLink}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepBatched solves the same sweep through BatchSolveLP,
// reporting how many points were replayed from structure reuse.
func BenchmarkSweepBatched(b *testing.B) {
	t, ds := sweepBenchDemands()
	var reused int
	for i := 0; i < b.N; i++ {
		rs, errs := BatchSolveLP(t, ds, Options{EpochMode: FastestLink}, BatchOptions{})
		for j := range rs {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
			if rs[j].Reused {
				reused++
			}
		}
	}
	b.ReportMetric(float64(reused)/float64(b.N), "reused/op")
}

// BenchmarkTACCLBaseline measures the TACCL-like heuristic on the same
// instance for solver-time comparisons.
func BenchmarkTACCLBaseline(b *testing.B) {
	t := DGX1()
	d := AllGather(t, 1, 25e3)
	for i := 0; i < b.N; i++ {
		if r := BaselineTACCL(t, d, TACCLOptions{Seed: 1, Restarts: 20}); !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSimulator measures continuous-time execution of a DGX1
// ALLGATHER schedule.
func BenchmarkSimulator(b *testing.B) {
	t := DGX1()
	d := AllGather(t, 1, 25e3)
	res, err := SolveMILP(t, d, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
