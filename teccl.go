// Package teccl is a Go implementation of TE-CCL ("Rethinking Machine
// Learning Collective Communication as a Multi-Commodity Flow Problem",
// SIGCOMM 2024): a collective-communication optimizer that models
// scheduling as a time-expanded multi-commodity flow problem with
// in-network copy, store-and-forward buffers, and α-aware pipelining.
//
// # Quick start
//
// The entry point is a Planner: a long-lived session pinned to one
// topology that answers a stream of solve requests.
//
//	t := teccl.DGX1()
//	planner := teccl.NewPlanner(t, teccl.PlannerOptions{})
//	plan, err := planner.Plan(ctx, teccl.Request{
//		Demand: teccl.AllGather(t, 1, 25e3), // 1 chunk of 25 KB per GPU
//	})
//	if err != nil { ... }
//	fmt.Println(plan.Schedule.FinishTime(), plan.Solver)
//
// Plan honors ctx end to end: cancellation (or a deadline) interrupts
// the simplex mid-iteration, the branch-and-bound worker pool between
// nodes, and the A* loop between rounds; Options.TimeLimit is enforced
// through the same mechanism, uniformly for all three solvers. The
// session caches per-topology state across requests — epoch estimates,
// tau derivations, solved schedules of structurally identical models,
// and warm-start bases — so repeated and related requests (sweeps,
// serving traffic) get progressively cheaper; Plan provenance
// (Plan.CacheHit, Plan.WarmStart) and Planner.Stats report the reuse.
//
// Sessions also absorb churn online: Planner.Replan applies a Delta
// (link/node failures, bandwidth degradation, straggler slowdown,
// demand add/drop) to the session and re-solves the incumbent request,
// incrementally when the incumbent LP basis can be reoptimized with a
// few dual-simplex pivots, and by a cold re-solve otherwise — see
// NewPlanner's documentation and examples/linkfailure.
//
// # Serving: the teccld daemon and the wire client
//
// The same session API is served over HTTP by cmd/teccld, a long-lived
// daemon owning a pool of Planner sessions keyed by topology
// fingerprint, with admission control (a concurrency cap plus a bounded
// queue; saturation returns 429) and graceful SIGTERM draining. Dial
// returns a Client whose Planner method yields a RemotePlanner backed
// by a daemon session; local and remote sessions are interchangeable
// behind the PlannerAPI interface:
//
//	var p teccl.PlannerAPI
//	if addr != "" {
//		c, err := teccl.Dial(addr, teccl.ClientOptions{})
//		if err != nil { ... }
//		p = c.Planner(t)
//	} else {
//		p = teccl.NewPlanner(t, teccl.PlannerOptions{})
//	}
//	plan, err := p.Plan(ctx, teccl.Request{Demand: d})
//
// Clients dialing one daemon share sessions: byte-identical topologies
// map to one fingerprint and therefore one session's caches, so a fleet
// of short-lived callers still gets schedule replays and warm bases.
// NewServer embeds the same daemon in-process (examples/multitenant
// does this); cmd/teccld/README.md documents the wire schema, flags,
// and deployment. Two Options fields do not cross the wire: Progress is
// dropped, and a func-valued LinkCapacity is rejected client-side
// (Priority survives — it is sampled over the demanded triples into
// explicit weights). Sessions end with Close, locally and remotely; a
// closed session's Plan/Replan return ErrPlannerClosed.
//
// Four formulations are available, mirroring the paper:
//
//   - SolverMILP — the general mixed-integer form (§3.1): optimal,
//     supports copy, slowest.
//   - SolverLP — the linear-program form (§4.1): optimal for demands
//     that do not benefit from copy (ALLTOALL-like), most scalable.
//   - SolverAStar — the round-partitioned approximation (§4.2):
//     supports copy, scales past the MILP, trades optimality for speed.
//   - SolverHorizon — the LP form solved by rolling-horizon
//     decomposition: overlapping epoch windows with warm-base chaining
//     and a committed prefix carried forward, for instances whose
//     monolithic time-expanded model is the scaling wall.
//
// Selection is a pluggable PlannerOptions.Policy: DefaultPolicy keeps
// the historical auto-pick (LP when no chunk has more than one
// destination, the MILP for small copy-friendly instances, A*
// otherwise), CostModelPolicy routes by estimated model size (huge
// LP-eligible instances above its HorizonCells threshold go to
// SolverHorizon), and ForceLP/ForceMILP/ForceAStar/ForceHorizon pin one
// formulation; Request.Solver overrides the policy per request.
//
// # Migrating from the free functions
//
// The original stateless API — Solve, SolveLP, SolveMILP, SolveAStar,
// BatchSolveLP — remains and behaves as before; each call now runs
// through a single-use Planner session. New code should hold a Planner
// per topology instead: same results, with cross-request state reuse
// and context cancellation. Baselines from the paper's evaluation (a
// TACCL-like heuristic, an SCCL-like synchronous-step synthesizer,
// shortest-path scheduling, and ring algorithms) live behind the
// Baseline* functions.
package teccl

import (
	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/msccl"
	"teccl/internal/schedule"
	"teccl/internal/sim"
	"teccl/internal/topo"

	// Register the rolling-horizon solver (SolverHorizon) with the
	// Planner dispatch; policies may then route large instances to it.
	_ "teccl/internal/horizon"
)

// Topology is a directed graph of GPU and switch nodes; links carry a
// capacity (bytes/second) and a fixed latency α (seconds).
type Topology = topo.Topology

// NodeID identifies a node within a Topology.
type NodeID = topo.NodeID

// LinkID identifies a directed link within a Topology.
type LinkID = topo.LinkID

// Demand is a collective demand matrix: which destination wants which
// chunk of which source.
type Demand = collective.Demand

// TopologyDelta is the topology-only churn description consumed by
// Topology.ApplyDelta (Delta, the Planner.Replan form, additionally
// carries demand churn).
type TopologyDelta = topo.Delta

// Schedule is an executable collective schedule: per-epoch chunk sends.
type Schedule = schedule.Schedule

// Send is one chunk transmission within a Schedule.
type Send = schedule.Send

// Options configures a solve; the zero value uses the paper's defaults
// (fastest-link epochs, copy-capable switches, buffers on).
type Options = core.Options

// Result is the outcome of a solve.
type Result = core.Result

// SimResult reports a continuous-time α-β execution of a schedule.
type SimResult = sim.Result

// Epoch-duration modes (§5).
const (
	FastestLink = core.FastestLink
	SlowestLink = core.SlowestLink
)

// Switch models (§3.1).
const (
	SwitchCopy   = core.SwitchCopy
	SwitchNoCopy = core.SwitchNoCopy
)

// Crash-basis policies (Options.Crash): whether cold solves seed the
// simplex from the greedy schedule's flow support instead of the
// all-slack basis. See core.CrashMode.
const (
	CrashAuto = core.CrashAuto
	CrashAll  = core.CrashAll
	CrashOff  = core.CrashOff
)

// NewTopology returns an empty topology with the given name.
func NewTopology(name string) *Topology { return topo.New(name) }

// Topology builders for the paper's evaluation platforms (Table 2,
// Appendix H) plus generic shapes.
var (
	// DGX1 is a single 8-GPU NVLink chassis.
	DGX1 = topo.DGX1
	// NDv2 is chassis x 8-GPU NVLink boxes behind an InfiniBand switch.
	NDv2 = topo.NDv2
	// NDv2Mini is the laptop-scale NDv2 stand-in (4 GPUs per chassis).
	NDv2Mini = topo.NDv2Mini
	// DGX2 is chassis x (16 GPUs + NVSwitch) with cross-chassis links.
	DGX2 = topo.DGX2
	// DGX2Mini is the laptop-scale DGX2 stand-in.
	DGX2Mini = topo.DGX2Mini
	// Internal1 and Internal2 are synthetic stand-ins for the paper's
	// proprietary cloud topologies (see DESIGN.md).
	Internal1        = topo.Internal1
	Internal1NoAlpha = topo.Internal1NoAlpha
	Internal2        = topo.Internal2
	// Generic shapes.
	Ring     = topo.Ring
	Line     = topo.Line
	FullMesh = topo.FullMesh
	Star     = topo.Star
	// ZeroAlpha copies a topology with every link latency zeroed (the
	// alpha-blind comparisons of Figure 2, and exactly-scaling sweeps).
	ZeroAlpha = topo.ZeroAlpha
)

// gpuInts converts a topology's GPU list to int indexes.
func gpuInts(t *Topology) []int {
	gs := t.GPUs()
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = int(g)
	}
	return out
}

// AllGather builds an ALLGATHER demand over every GPU in t.
func AllGather(t *Topology, chunksPerGPU int, chunkBytes float64) *Demand {
	return collective.AllGather(t.NumNodes(), gpuInts(t), chunksPerGPU, chunkBytes)
}

// AllToAll builds an ALLTOALL demand over every GPU in t; chunksPerPair
// is the number of chunks each sender delivers to each destination.
func AllToAll(t *Topology, chunksPerPair int, chunkBytes float64) *Demand {
	return collective.AllToAll(t.NumNodes(), gpuInts(t), chunksPerPair, chunkBytes)
}

// Broadcast builds a BROADCAST demand from root to every other GPU.
func Broadcast(t *Topology, root NodeID, chunks int, chunkBytes float64) *Demand {
	return collective.Broadcast(t.NumNodes(), gpuInts(t), int(root), chunks, chunkBytes)
}

// Scatter builds a SCATTER demand from root.
func Scatter(t *Topology, root NodeID, chunksPerDest int, chunkBytes float64) *Demand {
	return collective.Scatter(t.NumNodes(), gpuInts(t), int(root), chunksPerDest, chunkBytes)
}

// Gather builds a GATHER demand to root.
func Gather(t *Topology, root NodeID, chunksPerGPU int, chunkBytes float64) *Demand {
	return collective.Gather(t.NumNodes(), gpuInts(t), int(root), chunksPerGPU, chunkBytes)
}

// ReduceScatter builds the communication pattern of a REDUCESCATTER.
func ReduceScatter(t *Topology, chunkBytes float64) *Demand {
	return collective.ReduceScatter(t.NumNodes(), gpuInts(t), chunkBytes)
}

// NewDemand builds an empty demand matrix for custom patterns (including
// multi-tenant unions via Demand.Or, per §5).
func NewDemand(t *Topology, chunksPerSource int, chunkBytes float64) *Demand {
	return collective.New(t.NumNodes(), chunksPerSource, chunkBytes)
}

// Solve optimizes the demand with the most appropriate formulation per
// DefaultPolicy: the LP when copy cannot help (every chunk has at most
// one destination), the general MILP for small copy-friendly instances,
// and A* for larger ones. It is a stateless wrapper over a single-use
// Planner; hold a Planner directly for cross-request state reuse and
// context cancellation.
func Solve(t *Topology, d *Demand, opt Options) (*Result, error) {
	return solveVia(t, d, opt, SolverAuto)
}

// SolveMILP solves with the general mixed-integer form (§3.1).
func SolveMILP(t *Topology, d *Demand, opt Options) (*Result, error) {
	return solveVia(t, d, opt, SolverMILP)
}

// SolveLP solves with the linear-program form (§4.1).
func SolveLP(t *Topology, d *Demand, opt Options) (*Result, error) {
	return solveVia(t, d, opt, SolverLP)
}

// BatchOptions tunes a BatchSolveLP sweep.
type BatchOptions = core.BatchOptions

// BatchSolveLP solves the LP form for a whole sweep of demand variants
// (e.g. a chunk-size sweep) against shared solver state: structurally
// identical points are solved once and replayed, the rest chain optimal
// bases point-to-point, and the points fan out over a worker pool.
// Results and errors are aligned with demands; points fail independently.
func BatchSolveLP(t *Topology, demands []*Demand, opt Options, bo BatchOptions) ([]*Result, []error) {
	return core.BatchSolveLP(t, demands, opt, bo)
}

// SolveAStar solves with the A* round partitioning (§4.2).
func SolveAStar(t *Topology, d *Demand, opt Options) (*Result, error) {
	return solveVia(t, d, opt, SolverAStar)
}

// SolveHorizon solves the LP form by rolling-horizon decomposition:
// overlapping epoch windows solved in sequence with warm-base chaining,
// a committed prefix carried forward between windows, and the stitched
// schedule validated like any monolithic solve. Options.HorizonWindow,
// HorizonOverlap, HorizonCertify, AutoEpochMultiplier, and
// HorizonCellBudget tune it; zero values auto-size from the topology.
// Result.Windows reports how many windows were stitched (0 means the
// solver fell back to one monolithic solve).
func SolveHorizon(t *Topology, d *Demand, opt Options) (*Result, error) {
	return solveVia(t, d, opt, SolverHorizon)
}

// Simulate executes a schedule in continuous time under the α-β cost
// model and reports precise completion metrics.
func Simulate(s *Schedule) (*SimResult, error) { return sim.Run(s) }

// SimulateOn executes a schedule against a different topology with the
// same shape (e.g. the real α after solving with α = 0, as in Figure 2).
func SimulateOn(s *Schedule, t *Topology) (*SimResult, error) { return sim.RunOn(s, t) }

// ExportMSCCL serializes a whole-chunk schedule to MSCCL-style XML.
func ExportMSCCL(s *Schedule, collName string) ([]byte, error) {
	return msccl.Export(s, collName)
}

// EstimateEpochs returns an upper bound on the epochs needed for the
// demand at epoch duration tau (Appendix E's Algorithm 1).
func EstimateEpochs(t *Topology, d *Demand, tau float64) int {
	return core.EstimateEpochs(t, d, tau)
}

// DeriveTau computes the epoch duration for a chunk size and mode (§5).
func DeriveTau(t *Topology, chunkBytes float64, mode core.EpochMode, multiplier float64) float64 {
	return core.DeriveTau(t, chunkBytes, mode, multiplier)
}
